//! Utility-vector arithmetic and batch scoring.

use crate::dataset::Dataset;

/// Dot product `u · t`.
#[inline]
pub fn dot(u: &[f64], t: &[f64]) -> f64 {
    debug_assert_eq!(u.len(), t.len());
    // Unrolled pairwise sum; d is tiny (2..8) so this compiles to straight
    // line code for the common dimensions.
    let mut acc = 0.0;
    for i in 0..u.len() {
        acc += u[i] * t[i];
    }
    acc
}

/// Euclidean norm.
#[inline]
pub fn l2_norm(u: &[f64]) -> f64 {
    dot(u, u).sqrt()
}

/// Scale `u` to unit L2 norm. Returns `None` for the zero vector.
pub fn normalize_l2(u: &[f64]) -> Option<Vec<f64>> {
    let n = l2_norm(u);
    if n <= 0.0 {
        return None;
    }
    Some(u.iter().map(|v| v / n).collect())
}

/// Scale `u` so its components sum to 1 (the normalization used by the 2D
/// algorithms, Section IV-A). Returns `None` when the sum is non-positive.
pub fn normalize_l1(u: &[f64]) -> Option<Vec<f64>> {
    let s: f64 = u.iter().sum();
    if s <= 0.0 {
        return None;
    }
    Some(u.iter().map(|v| v / s).collect())
}

/// Score every tuple of `data` with `u`, appending into `out` (cleared
/// first). Reusing `out` across calls avoids re-allocating in sweep loops.
///
/// Routes through the blocked SoA kernel ([`crate::kernel`]); results are
/// bit-identical to the scalar reference `data.rows().map(|t| dot(u, t))`
/// because the kernel sums every dot in the same `j`-ascending order.
pub fn utilities_into(data: &Dataset, u: &[f64], out: &mut Vec<f64>) {
    assert_eq!(u.len(), data.dim(), "utility vector arity must equal d");
    crate::kernel::scores_into(data.soa(), u, out);
}

/// Score every tuple of `data` with `u` into a fresh vector.
pub fn utilities(data: &Dataset, u: &[f64]) -> Vec<f64> {
    let mut out = Vec::new();
    utilities_into(data, u, &mut out);
    out
}

/// Utility of a single tuple.
#[inline]
pub fn score(data: &Dataset, u: &[f64], index: u32) -> f64 {
    dot(u, data.row(index as usize))
}

/// Highest utility among the tuples at `indices` (`w(u, S)` in the paper).
pub fn best_score_of_set(data: &Dataset, u: &[f64], indices: &[u32]) -> f64 {
    indices.iter().map(|&i| score(data, u, i)).fold(f64::NEG_INFINITY, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((l2_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        let u = normalize_l2(&[3.0, 4.0]).unwrap();
        assert!((u[0] - 0.6).abs() < 1e-12 && (u[1] - 0.8).abs() < 1e-12);
        assert!(normalize_l2(&[0.0, 0.0]).is_none());
        let u = normalize_l1(&[1.0, 3.0]).unwrap();
        assert!((u[0] - 0.25).abs() < 1e-12);
        assert!(normalize_l1(&[0.0, 0.0]).is_none());
    }

    #[test]
    fn batch_scoring() {
        let d = Dataset::from_rows(&[[1.0, 0.0], [0.0, 1.0], [0.5, 0.5]]).unwrap();
        let u = [0.3, 0.7];
        let s = utilities(&d, &u);
        assert_eq!(s.len(), 3);
        assert!((s[0] - 0.3).abs() < 1e-12);
        assert!((s[1] - 0.7).abs() < 1e-12);
        assert!((s[2] - 0.5).abs() < 1e-12);
        assert_eq!(score(&d, &u, 1), s[1]);
        assert!((best_score_of_set(&d, &u, &[0, 2]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn utilities_into_reuses_buffer() {
        let d = Dataset::from_rows(&[[1.0], [2.0]]).unwrap();
        let mut buf = vec![9.0; 100];
        utilities_into(&d, &[2.0], &mut buf);
        assert_eq!(buf, vec![2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn wrong_arity_panics() {
        let d = Dataset::from_rows(&[[1.0, 2.0]]).unwrap();
        utilities(&d, &[1.0]);
    }
}
