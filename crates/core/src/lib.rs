//! Core datatypes and ranking primitives for rank-regret minimization.
//!
//! This crate defines the vocabulary shared by every algorithm in the
//! workspace, mirroring Section II of *Rank-Regret Minimization*
//! (Xiao & Li, ICDE 2022):
//!
//! * [`Dataset`] — `n` tuples over `d` numeric attributes, larger preferred;
//! * utility vectors and batch scoring ([`utility`]);
//! * ranks, top-k sets `Φk(u, D)` and the k-th score `w_k(u, D)` ([`rank`]);
//! * utility *spaces*: the full non-negative orthant `L` and restricted
//!   convex spaces `U` for the RRRM problem ([`space`]);
//! * the boundary-tuple basis `B` used by HDRRM ([`basis`]);
//! * problem statements and solver outputs ([`problem`]).
//!
//! # Conventions
//!
//! Tuples are addressed by `u32` indices into their [`Dataset`]. Ranks are
//! 1-based (`rank 1` = best), exactly as in the paper. All scoring uses
//! linear utility functions `w(u, t) = Σ u[i]·t[i]` with `u ≥ 0`.
//!
//! ```
//! use rrm_core::{Dataset, rank::rank_regret_of_set};
//!
//! // Table I of the paper.
//! let d = Dataset::from_rows(&[
//!     [0.0, 1.0], [0.4, 0.95], [0.57, 0.75], [0.79, 0.6],
//!     [0.2, 0.5], [0.35, 0.3], [1.0, 0.0],
//! ]).unwrap();
//! // For u = (0.25, 0.75), t2 outranks t1 (dual-space reading of Fig. 4).
//! let u = [0.25, 0.75];
//! assert_eq!(rank_regret_of_set(&d, &u, &[0]), 2); // {t1} has rank 2
//! assert_eq!(rank_regret_of_set(&d, &u, &[1]), 1); // {t2} has rank 1
//! ```

pub mod anytime;
pub mod approx;
pub mod basis;
pub mod dataset;
pub mod error;
pub mod exec;
pub mod kernel;
pub mod problem;
pub mod rank;
pub mod sampling;
pub mod solver;
pub mod space;
pub mod update;
pub mod utility;

pub use anytime::{AnytimeSearch, Bounds, Cutoff, Incumbent, SearchReport, TerminatedBy};
pub use approx::{
    hoeffding_directions, reduce, ApproxSpec, Fidelity, Reduced, SampledOptions, SampledSolver,
};
pub use basis::basis_indices;
pub use dataset::Dataset;
pub use error::RrmError;
pub use exec::{ExecPolicy, Parallelism, SolverCtx};
pub use kernel::{ScoreScratch, Soa};
pub use problem::{Algorithm, RrmProblem, RrrProblem, Solution};
pub use solver::{
    cache_bounded, rrr_via_rrm_search, rrr_via_rrm_search_with, BruteForceOptions,
    BruteForceSolver, Budget, DimRange, PreparedBruteForce, PreparedSolver, Solver,
    PREPARED_CACHE_CAP,
};
pub use space::{
    BiasedOrthantSpace, BoxSpace, ConeSpace, FullSpace, SphereCap, UtilitySpace, WeakRankingSpace,
};
pub use update::{apply_updates, AppliedUpdate, UpdateOp};
