//! The boundary-tuple basis `B` (Section II of the paper).
//!
//! For each attribute `A_i` the *i-th dimensional boundary tuple* is the
//! tuple with the maximum value on `A_i` (value 1 after normalization). The
//! basis is the set of all boundary tuples; HDRRM always includes it in its
//! output, which powers the `(1-ε)` utility guarantee of Theorem 7.

use crate::dataset::Dataset;

/// Indices of the boundary tuples, sorted ascending and deduplicated
/// (one tuple can be the boundary of several attributes, so `|B| ≤ d`).
///
/// Ties on an attribute's maximum are broken by the smallest index, which
/// keeps the basis deterministic.
pub fn basis_indices(data: &Dataset) -> Vec<u32> {
    let d = data.dim();
    let mut best_idx = vec![0u32; d];
    let mut best_val = vec![f64::NEG_INFINITY; d];
    for (i, row) in data.rows().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            if v > best_val[j] {
                best_val[j] = v;
                best_idx[j] = i as u32;
            }
        }
    }
    best_idx.sort_unstable();
    best_idx.dedup();
    best_idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basis_of_table_one() {
        // Table I: t1 = (0, 1) is the A2 boundary, t7 = (1, 0) the A1
        // boundary (0-based indices 0 and 6).
        let d = Dataset::from_rows(&[
            [0.0, 1.0],
            [0.4, 0.95],
            [0.57, 0.75],
            [0.79, 0.6],
            [0.2, 0.5],
            [0.35, 0.3],
            [1.0, 0.0],
        ])
        .unwrap();
        assert_eq!(basis_indices(&d), vec![0, 6]);
    }

    #[test]
    fn shared_boundary_tuple_dedupes() {
        let d = Dataset::from_rows(&[[1.0, 1.0], [0.5, 0.2]]).unwrap();
        assert_eq!(basis_indices(&d), vec![0]);
    }

    #[test]
    fn ties_prefer_smaller_index() {
        let d = Dataset::from_rows(&[[1.0, 0.0], [1.0, 0.5], [0.0, 0.5]]).unwrap();
        // A1 max = 1.0 at indices 0 and 1 -> picks 0.
        // A2 max = 0.5 at indices 1 and 2 -> picks 1.
        assert_eq!(basis_indices(&d), vec![0, 1]);
    }

    #[test]
    fn single_attribute() {
        let d = Dataset::from_rows(&[[0.3], [0.9], [0.1]]).unwrap();
        assert_eq!(basis_indices(&d), vec![1]);
    }
}
