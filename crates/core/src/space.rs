//! Utility spaces: the full orthant `L` and restricted convex spaces `U`.
//!
//! RRRM (Definition 4) minimizes rank-regret over a convex `U ⊆ L`. Because
//! ranks depend only on the *direction* of a utility vector, a space is
//! characterized by the set of rays it contains; every implementation
//! answers three questions:
//!
//! * membership of a direction ([`UtilitySpace::contains_direction`]);
//! * sampling a direction ([`UtilitySpace::sample_direction`]) — used by
//!   HDRRM's `Da`, by MDRRRr and by the regret estimators;
//! * an optional polyhedral description `A·u ≥ 0`
//!   ([`UtilitySpace::cone_rows`]) — used by LP-based routines (restricted
//!   skyline, MDRRR). Non-polyhedral spaces (spherical caps) return `None`
//!   and remain usable by all sampling-based algorithms.
//!
//! The concrete spaces cover the restricted-space literature the paper
//! cites: convex polytopes/cones \[9\], \[18\] ([`ConeSpace`]), weak rankings
//! \[12\] used in the paper's own RRRM experiments ([`WeakRankingSpace`]),
//! axis-parallel weight boxes \[16\] ([`BoxSpace`]) and hyper-spheres \[17\]
//! ([`SphereCap`]).

use rand::RngCore;

use crate::sampling;
use crate::utility::{dot, l2_norm};

/// Tolerance for membership tests on direction vectors.
const DIR_TOL: f64 = 1e-9;
/// Rejection sampling attempts before falling back to a deterministic
/// interior point.
const MAX_REJECT: usize = 10_000;

/// A convex space of utility vectors, closed under positive scaling.
pub trait UtilitySpace: Send + Sync {
    /// Attribute dimensionality `d`.
    fn dim(&self) -> usize;

    /// Does the ray through `u` belong to the space? Must be scale
    /// invariant and reject the zero vector and vectors outside the
    /// non-negative orthant.
    fn contains_direction(&self, u: &[f64]) -> bool;

    /// Sample a unit-norm direction in the space (uniform on the sphere
    /// patch for the built-in spaces, matching the paper's user model).
    fn sample_direction(&self, rng: &mut dyn RngCore) -> Vec<f64>;

    /// Homogeneous polyhedral rows `row · u ≥ 0` describing the space inside
    /// the orthant, or `None` when the space is not polyhedral. The orthant
    /// constraints `u ≥ 0` are implicit and must not be included.
    fn cone_rows(&self) -> Option<Vec<Vec<f64>>>;

    /// Whether this space is the full orthant `L` (lets algorithms skip
    /// restricted-space machinery).
    fn is_full(&self) -> bool {
        false
    }

    /// Short human-readable label for reports.
    fn label(&self) -> String;

    /// Clone into an owned trait object. Prepared solvers keep the space
    /// they were built against so later queries (with new sample budgets)
    /// can draw fresh directions from it.
    fn clone_box(&self) -> Box<dyn UtilitySpace>;
}

impl Clone for Box<dyn UtilitySpace> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

fn in_orthant(u: &[f64]) -> bool {
    u.iter().all(|&x| x >= -DIR_TOL) && l2_norm(u) > DIR_TOL
}

// ------------------------------------------------------------------------
// Full space L
// ------------------------------------------------------------------------

/// The full non-negative orthant `L` (the RRM problem's function class).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FullSpace {
    d: usize,
}

impl FullSpace {
    pub fn new(d: usize) -> Self {
        assert!(d >= 1);
        Self { d }
    }
}

impl UtilitySpace for FullSpace {
    fn dim(&self) -> usize {
        self.d
    }

    fn contains_direction(&self, u: &[f64]) -> bool {
        u.len() == self.d && in_orthant(u)
    }

    fn sample_direction(&self, rng: &mut dyn RngCore) -> Vec<f64> {
        sampling::orthant_direction(self.d, rng)
    }

    fn cone_rows(&self) -> Option<Vec<Vec<f64>>> {
        Some(Vec::new())
    }

    fn is_full(&self) -> bool {
        true
    }

    fn label(&self) -> String {
        format!("L (full orthant, d={})", self.d)
    }

    fn clone_box(&self) -> Box<dyn UtilitySpace> {
        Box::new(*self)
    }
}

// ------------------------------------------------------------------------
// Polyhedral cone
// ------------------------------------------------------------------------

/// A polyhedral cone `{u ≥ 0 : A·u ≥ 0}` given by its rows.
///
/// This is the most general restricted space the LP-based routines support;
/// the paper's "any convex space" claim is realized by this type together
/// with the sampling-only [`SphereCap`].
#[derive(Debug, Clone, PartialEq)]
pub struct ConeSpace {
    d: usize,
    rows: Vec<Vec<f64>>,
}

impl ConeSpace {
    /// Build a cone from homogeneous rows `row · u ≥ 0`.
    ///
    /// # Panics
    /// Panics when a row has the wrong arity.
    pub fn new(d: usize, rows: Vec<Vec<f64>>) -> Self {
        assert!(d >= 1);
        for row in &rows {
            assert_eq!(row.len(), d, "cone row arity must equal d");
        }
        Self { d, rows }
    }

    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }
}

impl UtilitySpace for ConeSpace {
    fn dim(&self) -> usize {
        self.d
    }

    fn contains_direction(&self, u: &[f64]) -> bool {
        if u.len() != self.d || !in_orthant(u) {
            return false;
        }
        let norm = l2_norm(u);
        self.rows.iter().all(|row| dot(row, u) >= -DIR_TOL * norm)
    }

    fn sample_direction(&self, rng: &mut dyn RngCore) -> Vec<f64> {
        for _ in 0..MAX_REJECT {
            let u = sampling::orthant_direction(self.d, rng);
            if self.contains_direction(&u) {
                return u;
            }
        }
        panic!(
            "rejection sampling failed after {MAX_REJECT} attempts; \
             the cone is (nearly) empty — validate it with rrm_lp::cone::cone_nonempty"
        );
    }

    fn cone_rows(&self) -> Option<Vec<Vec<f64>>> {
        Some(self.rows.clone())
    }

    fn label(&self) -> String {
        format!("cone ({} rows, d={})", self.rows.len(), self.d)
    }

    fn clone_box(&self) -> Box<dyn UtilitySpace> {
        Box::new(self.clone())
    }
}

// ------------------------------------------------------------------------
// Weak rankings (the paper's RRRM experiments, Section VI-B.5)
// ------------------------------------------------------------------------

/// The weak-ranking space `U = {u ∈ R^d_+ : u[i] ≥ u[i+1] for i ∈ [c]}`.
///
/// The paper's RRRM experiments use this with `c = 2`. Sampling is exact
/// (not rejection-based): the first `c + 1` coordinates of a uniform orthant
/// direction are sorted descending, which maps the uniform measure onto the
/// cone uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeakRankingSpace {
    d: usize,
    c: usize,
}

impl WeakRankingSpace {
    /// # Panics
    /// Panics unless `1 ≤ c ≤ d - 1`.
    pub fn new(d: usize, c: usize) -> Self {
        assert!(c >= 1 && c < d, "weak ranking requires 1 <= c <= d-1");
        Self { d, c }
    }

    pub fn c(&self) -> usize {
        self.c
    }
}

impl UtilitySpace for WeakRankingSpace {
    fn dim(&self) -> usize {
        self.d
    }

    fn contains_direction(&self, u: &[f64]) -> bool {
        if u.len() != self.d || !in_orthant(u) {
            return false;
        }
        let norm = l2_norm(u);
        (0..self.c).all(|i| u[i] - u[i + 1] >= -DIR_TOL * norm)
    }

    fn sample_direction(&self, rng: &mut dyn RngCore) -> Vec<f64> {
        let mut u = sampling::orthant_direction(self.d, rng);
        u[..=self.c].sort_unstable_by(|a, b| b.partial_cmp(a).expect("finite"));
        u
    }

    fn cone_rows(&self) -> Option<Vec<Vec<f64>>> {
        let mut rows = Vec::with_capacity(self.c);
        for i in 0..self.c {
            let mut row = vec![0.0; self.d];
            row[i] = 1.0;
            row[i + 1] = -1.0;
            rows.push(row);
        }
        Some(rows)
    }

    fn label(&self) -> String {
        format!("weak ranking (c={}, d={})", self.c, self.d)
    }

    fn clone_box(&self) -> Box<dyn UtilitySpace> {
        Box::new(*self)
    }
}

// ------------------------------------------------------------------------
// Weight box
// ------------------------------------------------------------------------

/// An axis-parallel box on L1-normalized weights:
/// `U = {u ≥ 0 : lo[i] ≤ u[i]/Σu ≤ hi[i]}` (the hyper-rectangle model of
/// Liu et al. \[16\]).
#[derive(Debug, Clone, PartialEq)]
pub struct BoxSpace {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl BoxSpace {
    /// # Panics
    /// Panics when the bounds are malformed (`lo[i] > hi[i]`, negative
    /// bounds, `Σ lo > 1`, or `Σ hi < 1` — each makes the box empty on the
    /// weight simplex).
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        assert_eq!(lo.len(), hi.len());
        assert!(!lo.is_empty());
        for (l, h) in lo.iter().zip(&hi) {
            assert!(*l >= 0.0 && l <= h, "need 0 <= lo <= hi");
        }
        assert!(lo.iter().sum::<f64>() <= 1.0 + 1e-12, "Σ lo must not exceed 1");
        assert!(hi.iter().sum::<f64>() >= 1.0 - 1e-12, "Σ hi must reach 1");
        Self { lo, hi }
    }

    /// The box around a point estimate `w` (on the weight simplex) with
    /// per-coordinate slack `eps`, clamped to `[0, 1]`. This is the "expand
    /// a mined vector into a candidate space" workflow from the paper's
    /// introduction.
    pub fn around(w: &[f64], eps: f64) -> Self {
        let lo = w.iter().map(|&x| (x - eps).max(0.0)).collect();
        let hi = w.iter().map(|&x| (x + eps).min(1.0)).collect();
        Self::new(lo, hi)
    }
}

impl UtilitySpace for BoxSpace {
    fn dim(&self) -> usize {
        self.lo.len()
    }

    fn contains_direction(&self, u: &[f64]) -> bool {
        if u.len() != self.lo.len() || !in_orthant(u) {
            return false;
        }
        let s: f64 = u.iter().sum();
        if s <= DIR_TOL {
            return false;
        }
        u.iter().zip(self.lo.iter().zip(&self.hi)).all(|(&x, (&l, &h))| {
            let w = x / s;
            w >= l - DIR_TOL && w <= h + DIR_TOL
        })
    }

    fn sample_direction(&self, rng: &mut dyn RngCore) -> Vec<f64> {
        let d = self.dim();
        for _ in 0..MAX_REJECT {
            let u = sampling::orthant_direction(d, rng);
            if self.contains_direction(&u) {
                return u;
            }
        }
        // Narrow boxes defeat rejection sampling; fall back to a direct
        // draw inside the box, re-normalized onto the weight simplex. The
        // result stays inside U (membership is what algorithms rely on)
        // even though the distribution is no longer exactly uniform.
        use rand::Rng;
        loop {
            let w: Vec<f64> = self
                .lo
                .iter()
                .zip(&self.hi)
                .map(|(&l, &h)| if h > l { rng.random_range(l..=h) } else { l })
                .collect();
            let s: f64 = w.iter().sum();
            if s > DIR_TOL {
                let cand: Vec<f64> = w.iter().map(|x| x / s).collect();
                if self.contains_direction(&cand) {
                    let n = l2_norm(&cand);
                    return cand.iter().map(|x| x / n).collect();
                }
            }
        }
    }

    fn cone_rows(&self) -> Option<Vec<Vec<f64>>> {
        // lo[i]·Σu ≤ u[i] ≤ hi[i]·Σu, written homogeneously.
        let d = self.dim();
        let mut rows = Vec::with_capacity(2 * d);
        for i in 0..d {
            if self.lo[i] > 0.0 {
                let mut row = vec![-self.lo[i]; d];
                row[i] += 1.0;
                rows.push(row);
            }
            if self.hi[i] < 1.0 {
                let mut row = vec![self.hi[i]; d];
                row[i] -= 1.0;
                rows.push(row);
            }
        }
        Some(rows)
    }

    fn label(&self) -> String {
        format!("weight box (d={})", self.dim())
    }

    fn clone_box(&self) -> Box<dyn UtilitySpace> {
        Box::new(self.clone())
    }
}

// ------------------------------------------------------------------------
// Spherical cap
// ------------------------------------------------------------------------

/// A spherical cap `U = {u : angle(u, center) ≤ α}` intersected with the
/// orthant (the hyper-sphere model of Mouratidis et al. \[17\]). Convex for
/// `α ≤ π/2`. Not polyhedral, so [`UtilitySpace::cone_rows`] returns `None`
/// and only sampling-based algorithms (HDRRM, MDRRRr, estimators) accept it.
#[derive(Debug, Clone, PartialEq)]
pub struct SphereCap {
    center: Vec<f64>,
    cos_alpha: f64,
}

impl SphereCap {
    /// # Panics
    /// Panics when `center` is not a non-zero orthant vector or
    /// `alpha` is outside `(0, π/2]`.
    pub fn new(center: &[f64], alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= std::f64::consts::FRAC_PI_2);
        assert!(in_orthant(center), "cap center must lie in the orthant");
        let n = l2_norm(center);
        Self { center: center.iter().map(|x| x / n).collect(), cos_alpha: alpha.cos() }
    }
}

impl UtilitySpace for SphereCap {
    fn dim(&self) -> usize {
        self.center.len()
    }

    fn contains_direction(&self, u: &[f64]) -> bool {
        if u.len() != self.center.len() || !in_orthant(u) {
            return false;
        }
        let norm = l2_norm(u);
        dot(u, &self.center) >= (self.cos_alpha - DIR_TOL) * norm
    }

    fn sample_direction(&self, rng: &mut dyn RngCore) -> Vec<f64> {
        for _ in 0..MAX_REJECT {
            let u = sampling::orthant_direction(self.dim(), rng);
            if self.contains_direction(&u) {
                return u;
            }
        }
        // Tiny caps: jitter around the center until a member appears.
        loop {
            let mut u: Vec<f64> =
                self.center.iter().map(|&c| (c + 0.05 * sampling::gauss(rng)).max(0.0)).collect();
            let n = l2_norm(&u);
            if n > DIR_TOL {
                for x in &mut u {
                    *x /= n;
                }
                if self.contains_direction(&u) {
                    return u;
                }
            }
        }
    }

    fn cone_rows(&self) -> Option<Vec<Vec<f64>>> {
        None
    }

    fn label(&self) -> String {
        format!("sphere cap (d={})", self.dim())
    }

    fn clone_box(&self) -> Box<dyn UtilitySpace> {
        Box::new(self.clone())
    }
}

// ------------------------------------------------------------------------
// Non-uniform user populations (Section V-C)
// ------------------------------------------------------------------------

/// The full orthant with a *non-uniform* direction distribution: samples
/// concentrate around a `center` direction with strength `kappa`
/// (`kappa = 0` recovers the uniform sphere patch; larger values focus the
/// mass like a von Mises–Fisher distribution).
///
/// This realizes the paper's Section V-C remark that HDRRM "can generalize
/// to any other distribution through some modifications: the samples in
/// `Da` are generated based on the specific distribution of `S` instead of
/// a uniform distribution". Membership (and hence the certified regret) is
/// unchanged — only where the probabilistic Theorem 6 mass sits moves.
#[derive(Debug, Clone, PartialEq)]
pub struct BiasedOrthantSpace {
    center: Vec<f64>,
    kappa: f64,
}

impl BiasedOrthantSpace {
    /// # Panics
    /// Panics when `center` is not a non-zero orthant vector or
    /// `kappa < 0`.
    pub fn new(center: &[f64], kappa: f64) -> Self {
        assert!(kappa >= 0.0);
        assert!(in_orthant(center), "center must lie in the orthant");
        let n = l2_norm(center);
        Self { center: center.iter().map(|x| x / n).collect(), kappa }
    }
}

impl UtilitySpace for BiasedOrthantSpace {
    fn dim(&self) -> usize {
        self.center.len()
    }

    fn contains_direction(&self, u: &[f64]) -> bool {
        u.len() == self.center.len() && in_orthant(u)
    }

    fn sample_direction(&self, rng: &mut dyn RngCore) -> Vec<f64> {
        // Gaussian perturbation of the scaled center, folded into the
        // orthant: the standard cheap approximation of a vMF draw.
        loop {
            let u: Vec<f64> = self
                .center
                .iter()
                .map(|&c| (self.kappa * c + sampling::gauss(rng)).abs())
                .collect();
            let n = l2_norm(&u);
            if n > DIR_TOL {
                return u.iter().map(|x| x / n).collect();
            }
        }
    }

    fn cone_rows(&self) -> Option<Vec<Vec<f64>>> {
        Some(Vec::new()) // membership is the full orthant
    }

    fn is_full(&self) -> bool {
        // Deliberately false: algorithms must use this space's sampler
        // rather than substituting the uniform one.
        false
    }

    fn label(&self) -> String {
        format!("biased orthant (kappa={}, d={})", self.kappa, self.dim())
    }

    fn clone_box(&self) -> Box<dyn UtilitySpace> {
        Box::new(self.clone())
    }
}

// ------------------------------------------------------------------------
// Batch kernels
// ------------------------------------------------------------------------

/// Membership of every direction in `dirs`, chunked over `pol` worker
/// threads (the classification step HDRRM runs when restricting a polar
/// grid to `U`, and the filter estimators apply to candidate pools).
///
/// Per-direction answers are independent, so the output is identical at
/// any thread count; order follows `dirs`.
pub fn batch_contains(
    space: &dyn UtilitySpace,
    dirs: &[Vec<f64>],
    pol: crate::exec::Parallelism,
) -> Vec<bool> {
    rrm_par::par_map(dirs, pol, |u| space.contains_direction(u))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn full_space_membership() {
        let l = FullSpace::new(3);
        assert!(l.is_full());
        assert!(l.contains_direction(&[1.0, 0.0, 2.0]));
        assert!(!l.contains_direction(&[1.0, -0.5, 0.0]));
        assert!(!l.contains_direction(&[0.0, 0.0, 0.0]));
        assert!(!l.contains_direction(&[1.0, 1.0])); // wrong arity
        assert_eq!(l.cone_rows().unwrap().len(), 0);
    }

    #[test]
    fn full_space_samples_members() {
        let l = FullSpace::new(4);
        let mut r = rng();
        for _ in 0..50 {
            let u = l.sample_direction(&mut r);
            assert!(l.contains_direction(&u));
        }
    }

    #[test]
    fn membership_is_scale_invariant() {
        let w = WeakRankingSpace::new(4, 2);
        let u = [0.5, 0.3, 0.2, 0.4];
        let scaled: Vec<f64> = u.iter().map(|x| x * 1000.0).collect();
        assert_eq!(w.contains_direction(&u), w.contains_direction(&scaled));
    }

    #[test]
    fn weak_ranking_membership_and_rows() {
        let w = WeakRankingSpace::new(4, 2);
        assert!(w.contains_direction(&[0.5, 0.3, 0.2, 0.9])); // last attr free
        assert!(!w.contains_direction(&[0.3, 0.5, 0.2, 0.0]));
        let rows = w.cone_rows().unwrap();
        assert_eq!(rows, vec![vec![1.0, -1.0, 0.0, 0.0], vec![0.0, 1.0, -1.0, 0.0]]);
    }

    #[test]
    fn weak_ranking_sampler_exact() {
        let w = WeakRankingSpace::new(5, 3);
        let mut r = rng();
        for _ in 0..200 {
            let u = w.sample_direction(&mut r);
            assert!(w.contains_direction(&u), "{u:?}");
            let norm: f64 = u.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "weak ranking requires")]
    fn weak_ranking_rejects_bad_c() {
        WeakRankingSpace::new(3, 3);
    }

    #[test]
    fn cone_space_matches_weak_ranking() {
        let w = WeakRankingSpace::new(3, 1);
        let c = ConeSpace::new(3, w.cone_rows().unwrap());
        let mut r = rng();
        for _ in 0..100 {
            let u = sampling::orthant_direction(3, &mut r);
            assert_eq!(w.contains_direction(&u), c.contains_direction(&u), "{u:?}");
        }
        for _ in 0..50 {
            let u = c.sample_direction(&mut r);
            assert!(w.contains_direction(&u));
        }
    }

    #[test]
    fn box_space_membership() {
        let b = BoxSpace::new(vec![0.2, 0.0], vec![0.8, 0.8]);
        assert!(b.contains_direction(&[0.5, 0.5]));
        assert!(b.contains_direction(&[5.0, 5.0])); // scale invariant
        assert!(!b.contains_direction(&[0.1, 0.9]));
        assert!(!b.contains_direction(&[1.0, 0.0])); // w2 = 0 < ... w1 = 1 > .8
    }

    #[test]
    fn box_space_rows_agree_with_membership() {
        let b = BoxSpace::new(vec![0.3, 0.1], vec![0.9, 0.7]);
        let rows = b.cone_rows().unwrap();
        let mut r = rng();
        for _ in 0..200 {
            let u = sampling::orthant_direction(2, &mut r);
            let by_rows = rows.iter().all(|row| dot(row, &u) >= -1e-9);
            assert_eq!(b.contains_direction(&u), by_rows, "{u:?}");
        }
    }

    #[test]
    fn box_space_narrow_fallback_sampler() {
        // A box too narrow for rejection sampling to hit reliably.
        let b = BoxSpace::around(&[0.7, 0.2, 0.1], 0.005);
        let mut r = rng();
        for _ in 0..10 {
            let u = b.sample_direction(&mut r);
            assert!(b.contains_direction(&u), "{u:?}");
        }
    }

    #[test]
    fn sphere_cap_membership_and_sampling() {
        let c = SphereCap::new(&[1.0, 1.0], 0.3);
        let exact = [std::f64::consts::FRAC_1_SQRT_2, std::f64::consts::FRAC_1_SQRT_2];
        assert!(c.contains_direction(&exact));
        assert!(!c.contains_direction(&[1.0, 0.0]));
        assert!(c.cone_rows().is_none());
        let mut r = rng();
        for _ in 0..50 {
            let u = c.sample_direction(&mut r);
            assert!(c.contains_direction(&u));
        }
    }

    #[test]
    fn sphere_cap_tiny_fallback() {
        let c = SphereCap::new(&[3.0, 1.0, 2.0], 0.01);
        let mut r = rng();
        let u = c.sample_direction(&mut r);
        assert!(c.contains_direction(&u));
    }

    #[test]
    fn biased_space_membership_is_full_orthant() {
        let b = BiasedOrthantSpace::new(&[0.7, 0.2, 0.1], 8.0);
        assert!(b.contains_direction(&[1.0, 0.0, 0.0]));
        assert!(b.contains_direction(&[0.0, 0.0, 1.0]));
        assert!(!b.contains_direction(&[1.0, -0.1, 0.0]));
        assert!(!b.is_full(), "must keep its own sampler");
        assert_eq!(b.cone_rows().unwrap().len(), 0);
    }

    #[test]
    fn biased_space_concentrates_with_kappa() {
        let center = [1.0, 1.0, 1.0];
        let mut r = rng();
        let mean_dot = |kappa: f64, r: &mut StdRng| {
            let b = BiasedOrthantSpace::new(&center, kappa);
            let c: Vec<f64> = center.iter().map(|x| x / 3f64.sqrt()).collect();
            (0..2000)
                .map(|_| {
                    let u = b.sample_direction(r);
                    crate::utility::dot(&u, &c)
                })
                .sum::<f64>()
                / 2000.0
        };
        let loose = mean_dot(0.0, &mut r);
        let tight = mean_dot(10.0, &mut r);
        assert!(tight > loose + 0.05, "kappa must concentrate: {loose} vs {tight}");
        assert!(tight > 0.98, "kappa = 10 should hug the center: {tight}");
    }

    #[test]
    fn batch_contains_matches_serial_at_any_thread_count() {
        use crate::exec::Parallelism;
        let w = WeakRankingSpace::new(3, 1);
        let mut r = rng();
        let dirs: Vec<Vec<f64>> = (0..73).map(|_| sampling::orthant_direction(3, &mut r)).collect();
        let serial: Vec<bool> = dirs.iter().map(|u| w.contains_direction(u)).collect();
        for pol in [Parallelism::Sequential, Parallelism::Fixed(2), Parallelism::Fixed(7)] {
            assert_eq!(batch_contains(&w, &dirs, pol), serial, "{pol:?}");
        }
    }

    #[test]
    fn labels_mention_dimension() {
        assert!(FullSpace::new(3).label().contains("d=3"));
        assert!(WeakRankingSpace::new(4, 2).label().contains("c=2"));
        assert!(BoxSpace::new(vec![0.0], vec![1.0]).label().contains("box"));
        assert!(SphereCap::new(&[1.0, 1.0], 0.5).label().contains("cap"));
        assert!(ConeSpace::new(2, vec![]).label().contains("cone"));
        assert!(BiasedOrthantSpace::new(&[1.0, 1.0], 2.0).label().contains("kappa"));
    }
}
