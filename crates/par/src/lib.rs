//! Deterministic data-parallel runtime for the rank-regret workspace.
//!
//! Every hot loop in the reproduction — rank counting over `n` tuples per
//! utility direction, HDRRM's per-`m` discretizations, MDRMS greedy
//! scoring, set-cover candidate evaluation, brute-force rank tables — is a
//! map (or map-reduce) over independently schedulable chunks. This crate
//! is the one place that turns such loops into multi-core work while
//! keeping the workspace's core guarantee intact:
//!
//! > **Results are bit-identical regardless of thread count.**
//!
//! Two rules enforce that:
//!
//! 1. **Fixed chunk boundaries.** [`par_chunks`] and [`par_map_reduce`]
//!    split the input by an explicit `chunk_size` — never by the thread
//!    count — so the decomposition a reduction sees is a pure function of
//!    the input. ([`par_map`] chunks by thread count internally, which is
//!    safe there because its per-item outputs are independent of the
//!    decomposition.)
//! 2. **Ordered merges.** Chunk results are collected into slots indexed
//!    by chunk position and merged on the calling thread *in chunk order*
//!    — never through racy atomics-style reductions — so even
//!    non-commutative or floating-point-sensitive folds are reproducible.
//!
//! There is no global pool and no idle threads: each call spawns a scoped
//! team (`std::thread::scope`), workers pull chunk indices from an atomic
//! dispenser (cheap dynamic load balancing that cannot affect results),
//! and the team joins before the call returns. A worker panic propagates
//! to the caller.
//!
//! # Configuration
//!
//! [`Parallelism`] selects the thread count:
//!
//! * [`Parallelism::Auto`] (the default) — honour the `RRM_THREADS`
//!   environment variable when set to a positive integer; otherwise (or
//!   when set to `0`) use all available cores.
//! * [`Parallelism::Sequential`] — run inline on the calling thread; no
//!   threads are spawned at all.
//! * [`Parallelism::Fixed`]`(n)` — exactly `n` worker threads.
//!
//! `RRM_THREADS=1` therefore degrades the entire workspace to sequential
//! execution — CI runs the full test suite both ways and the answers must
//! not differ by a bit.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How many threads a parallel region may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Parallelism {
    /// `RRM_THREADS` when set to a positive integer, else all cores.
    #[default]
    Auto,
    /// Run inline on the calling thread (no spawning).
    Sequential,
    /// Exactly this many worker threads (`>= 1`).
    Fixed(usize),
}

impl Parallelism {
    /// Explicit thread count; `0` means "all cores, right now" — resolved
    /// against the machine at the call, so unlike [`Parallelism::Auto`]
    /// an ambient `RRM_THREADS` cannot override an explicit request.
    pub fn fixed(n: usize) -> Self {
        match n {
            0 => match std::thread::available_parallelism().map_or(1, |p| p.get()) {
                1 => Parallelism::Sequential,
                cores => Parallelism::Fixed(cores),
            },
            1 => Parallelism::Sequential,
            n => Parallelism::Fixed(n),
        }
    }

    /// The resolved worker count (always `>= 1`).
    pub fn threads(self) -> usize {
        match self {
            Parallelism::Sequential => 1,
            Parallelism::Fixed(n) => n.max(1),
            Parallelism::Auto => match std::env::var("RRM_THREADS") {
                Ok(v) => threads_from_env_str(Some(&v)),
                Err(_) => threads_from_env_str(None),
            },
        }
    }

    /// Does this policy run everything inline on the calling thread?
    pub fn is_sequential(self) -> bool {
        self.threads() <= 1
    }
}

/// `RRM_THREADS` parsing, factored out for testability: a positive integer
/// wins; `0`, empty, or unparsable values fall back to all cores.
fn threads_from_env_str(v: Option<&str>) -> usize {
    match v.and_then(|s| s.trim().parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism().map_or(1, |p| p.get()),
    }
}

/// Target work per chunk for [`adaptive_chunk`], in abstract "ops"
/// (typically tuple·attribute scoring steps): big enough to amortize
/// dispatch, small enough that a handful of chunks load-balance well.
const ADAPTIVE_TARGET_OPS: usize = 1 << 20;

/// Pick a chunk size for `items` whose per-item processing costs
/// `cost_per_item` abstract ops (e.g. `n * d` for a utility direction
/// scored against the whole dataset).
///
/// The result is a **pure function of the workload** — never of the thread
/// count, the machine, or runtime timing — so chunk boundaries (and with
/// them every ordered merge) stay bit-identical at any [`Parallelism`].
/// Cheap items get big chunks (less dispatch overhead), expensive items
/// get chunks as small as 1 (better load balancing), clamped to
/// `1..=4096`.
pub fn adaptive_chunk(items: usize, cost_per_item: usize) -> usize {
    (ADAPTIVE_TARGET_OPS / cost_per_item.max(1)).clamp(1, 4096).min(items.max(1))
}

/// Map `f` over fixed-size chunks of `items`, returning one result per
/// chunk **in chunk order**. `f` receives the chunk's starting offset into
/// `items` and the chunk slice.
///
/// The decomposition depends only on `items.len()` and `chunk_size`, never
/// on the thread count, so downstream order-sensitive merges see the same
/// chunk results at any [`Parallelism`].
pub fn par_chunks<T: Sync, R: Send>(
    items: &[T],
    chunk_size: usize,
    pol: Parallelism,
    f: impl Fn(usize, &[T]) -> R + Sync,
) -> Vec<R> {
    run_chunked(items, chunk_size.max(1), pol.threads(), &f)
}

/// Map `f` over every item, returning results **in item order**.
///
/// Chunking is internal (by thread count) — valid here because each output
/// depends only on its own item, so the decomposition cannot show through.
pub fn par_map<T: Sync, R: Send>(
    items: &[T],
    pol: Parallelism,
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    let threads = pol.threads();
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    // Oversubscribe chunks 4x for load balancing; harmless for determinism
    // (per-item outputs are decomposition independent).
    let chunk = items.len().div_ceil(threads * 4).max(1);
    let per_chunk = run_chunked(items, chunk, threads, &|_, chunk: &[T]| {
        chunk.iter().map(&f).collect::<Vec<R>>()
    });
    per_chunk.into_iter().flatten().collect()
}

/// Chunked map-reduce with a **deterministic, order-preserving reduction**:
/// `map` runs on fixed-size chunks (possibly in parallel), then `reduce`
/// folds the chunk results on the calling thread, strictly in chunk order.
/// Returns `None` for empty input.
///
/// Because chunk boundaries come from `chunk_size` alone and the fold is
/// ordered, the result is bit-identical at any thread count — even for
/// non-associative operations such as floating-point sums.
pub fn par_map_reduce<T: Sync, A: Send>(
    items: &[T],
    chunk_size: usize,
    pol: Parallelism,
    map: impl Fn(usize, &[T]) -> A + Sync,
    mut reduce: impl FnMut(A, A) -> A,
) -> Option<A> {
    let mut parts = par_chunks(items, chunk_size, pol, map).into_iter();
    let first = parts.next()?;
    Some(parts.fold(first, &mut reduce))
}

/// The scoped worker team behind every entry point: an atomic chunk
/// dispenser, one result slot per chunk, ordered collection at the end.
fn run_chunked<T: Sync, R: Send>(
    items: &[T],
    chunk_size: usize,
    threads: usize,
    f: &(impl Fn(usize, &[T]) -> R + Sync),
) -> Vec<R> {
    let n_chunks = items.len().div_ceil(chunk_size);
    if threads <= 1 || n_chunks <= 1 {
        // Sequential fallback: no spawning, same chunk decomposition.
        return (0..n_chunks).map(|i| f(i * chunk_size, chunk_at(items, i, chunk_size))).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n_chunks).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n_chunks) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_chunks {
                    break;
                }
                let r = f(i * chunk_size, chunk_at(items, i, chunk_size));
                *slots[i].lock().expect("chunk slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("chunk slot poisoned").expect("chunk computed"))
        .collect()
}

#[inline]
fn chunk_at<T>(items: &[T], i: usize, chunk_size: usize) -> &[T] {
    let start = i * chunk_size;
    &items[start..(start + chunk_size).min(items.len())]
}

#[cfg(test)]
mod tests {
    use super::*;

    const POLICIES: [Parallelism; 4] = [
        Parallelism::Sequential,
        Parallelism::Fixed(2),
        Parallelism::Fixed(3),
        Parallelism::Fixed(7),
    ];

    #[test]
    fn fixed_normalizes() {
        // fixed(0) = all cores, resolved now — explicitly NOT Auto, so an
        // ambient RRM_THREADS cannot override an explicit request.
        let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
        assert_eq!(Parallelism::fixed(0).threads(), cores);
        assert_ne!(Parallelism::fixed(0), Parallelism::Auto);
        assert_eq!(Parallelism::fixed(1), Parallelism::Sequential);
        assert_eq!(Parallelism::fixed(4), Parallelism::Fixed(4));
        assert_eq!(Parallelism::Sequential.threads(), 1);
        assert_eq!(Parallelism::Fixed(6).threads(), 6);
        assert!(Parallelism::Sequential.is_sequential());
        assert!(!Parallelism::Fixed(2).is_sequential());
    }

    #[test]
    fn env_parsing_rules() {
        let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
        assert_eq!(threads_from_env_str(None), cores);
        assert_eq!(threads_from_env_str(Some("0")), cores);
        assert_eq!(threads_from_env_str(Some("garbage")), cores);
        assert_eq!(threads_from_env_str(Some("")), cores);
        assert_eq!(threads_from_env_str(Some("3")), 3);
        assert_eq!(threads_from_env_str(Some(" 5 ")), 5);
    }

    #[test]
    fn adaptive_chunk_is_pure_and_clamped() {
        // Pure function of the workload: same inputs, same answer — and
        // RRM_THREADS / machine cores never enter the computation.
        assert_eq!(adaptive_chunk(1000, 4000), adaptive_chunk(1000, 4000));
        // Cheap items → large chunks, capped at 4096.
        assert_eq!(adaptive_chunk(1_000_000, 1), 4096);
        assert_eq!(adaptive_chunk(1_000_000, 0), 4096);
        // Expensive items → chunks shrink, floored at 1.
        assert_eq!(adaptive_chunk(1000, usize::MAX / 2), 1);
        // ~1M ops per chunk in between: n·d = 100k·4 → ~2 dirs per chunk.
        assert_eq!(adaptive_chunk(640, 400_000), 2);
        // Never larger than the item count itself.
        assert_eq!(adaptive_chunk(3, 10), 3);
        assert_eq!(adaptive_chunk(0, 10), 1);
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * x).collect();
        for pol in POLICIES {
            assert_eq!(par_map(&items, pol, |&x| x * x), expected, "{pol:?}");
        }
        let empty: Vec<usize> = Vec::new();
        assert!(par_map(&empty, Parallelism::Fixed(4), |&x: &usize| x).is_empty());
    }

    #[test]
    fn par_chunks_offsets_and_order() {
        let items: Vec<u32> = (0..103).collect();
        for pol in POLICIES {
            let got = par_chunks(&items, 10, pol, |offset, chunk| (offset, chunk.to_vec()));
            assert_eq!(got.len(), 11, "{pol:?}");
            for (i, (offset, chunk)) in got.iter().enumerate() {
                assert_eq!(*offset, i * 10);
                let hi = ((i + 1) * 10).min(103);
                assert_eq!(chunk, &items[i * 10..hi]);
            }
        }
    }

    #[test]
    fn map_reduce_is_bit_identical_across_thread_counts() {
        // Floating-point addition is not associative: only fixed chunk
        // boundaries + an ordered merge make this reproducible.
        let items: Vec<f64> = (0..5000).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let reference = par_map_reduce(
            &items,
            64,
            Parallelism::Sequential,
            |_, c| c.iter().sum::<f64>(),
            |a, b| a + b,
        )
        .unwrap();
        for pol in POLICIES {
            let got = par_map_reduce(&items, 64, pol, |_, c| c.iter().sum::<f64>(), |a, b| a + b)
                .unwrap();
            assert_eq!(got.to_bits(), reference.to_bits(), "{pol:?}");
        }
    }

    #[test]
    fn map_reduce_empty_and_single() {
        let empty: Vec<u64> = Vec::new();
        assert_eq!(
            par_map_reduce(&empty, 8, Parallelism::Fixed(4), |_, c| c.len(), |a, b| a + b),
            None
        );
        let one = [42u64];
        assert_eq!(
            par_map_reduce(&one, 8, Parallelism::Fixed(4), |_, c| c[0], |a, b| a + b),
            Some(42)
        );
    }

    #[test]
    fn ordered_merge_supports_non_commutative_folds() {
        // String concatenation is order sensitive; the ordered merge must
        // produce the left-to-right fold at any thread count.
        let items: Vec<String> = (0..40).map(|i| i.to_string()).collect();
        let expected = items.concat();
        for pol in POLICIES {
            let got = par_map_reduce(
                &items,
                3,
                pol,
                |_, c| c.concat(),
                |mut a, b| {
                    a.push_str(&b);
                    a
                },
            )
            .unwrap();
            assert_eq!(got, expected, "{pol:?}");
        }
    }

    #[test]
    fn more_threads_than_items() {
        let items = [1u32, 2, 3];
        assert_eq!(par_map(&items, Parallelism::Fixed(64), |&x| x + 1), vec![2, 3, 4]);
        assert_eq!(par_chunks(&items, 1, Parallelism::Fixed(64), |_, c| c[0]).len(), 3);
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        let items: Vec<usize> = (0..100).collect();
        par_map(&items, Parallelism::Fixed(2), |&x| {
            assert!(x != 57, "boom");
            x
        });
    }
}
