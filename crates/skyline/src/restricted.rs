//! The restricted skyline `Sky_U(D)` (Definition 5, after Ciaccia &
//! Martinenghi), the RRRM candidate set of Theorem 3.

use rrm_core::{Dataset, RrmError, UtilitySpace};
use rrm_geom::dual::normalized_interval_2d;

use crate::dominance::u_dominates;
use crate::skyhd::skyline;

const TOL: f64 = 1e-9;

/// Indices of `Sky_U(D)`, ascending.
///
/// * Full space — the classic skyline.
/// * Polyhedral `U`, `d = 2` — exact `O(n log n)`: U-dominance over a 2D
///   cone is plain dominance in the coordinates
///   `(w(u_{c0}, t), w(u_{c1}, t))` of the cone's extreme rays, so the 2D
///   sweep applies (the approach of Liu et al. \[16\] the paper cites).
/// * Polyhedral `U`, `d > 2` — exact: pre-filter with the classic skyline
///   (every U-dominated tuple is U-dominated by a skyline member), then
///   pairwise LP tests among the survivors.
/// * Non-polyhedral `U` — [`RrmError::InvalidSpace`]; use
///   [`u_skyline_sampled`] instead.
pub fn u_skyline(data: &Dataset, space: &dyn UtilitySpace) -> Result<Vec<u32>, RrmError> {
    if space.dim() != data.dim() {
        return Err(RrmError::DimensionMismatch { expected: data.dim(), got: space.dim() });
    }
    if space.is_full() {
        return Ok(skyline(data));
    }
    let Some(rows) = space.cone_rows() else {
        return Err(RrmError::InvalidSpace(
            "u_skyline needs a polyhedral space; use u_skyline_sampled for caps".into(),
        ));
    };
    if data.dim() == 2 {
        let (c0, c1) = normalized_interval_2d(&rows)
            .ok_or_else(|| RrmError::InvalidSpace("empty 2D cone".into()))?;
        return Ok(u_skyline_2d(data, c0, c1));
    }

    let candidates = skyline(data);
    let mut out = Vec::with_capacity(candidates.len());
    for &t in &candidates {
        let row_t = data.row(t as usize);
        let dominated = candidates
            .iter()
            .any(|&s| s != t && u_dominates(data.row(s as usize), row_t, &rows, TOL));
        if !dominated {
            out.push(t);
        }
    }
    Ok(out)
}

/// Exact `Sky_U(D)` for a 2D cone whose normalized weights span `[c0, c1]`:
/// plain 2D skyline over the scores at the two extreme directions.
pub fn u_skyline_2d(data: &Dataset, c0: f64, c1: f64) -> Vec<u32> {
    skyline(&u_transform_2d(data, c0, c1))
}

/// The extreme-direction score transform behind [`u_skyline_2d`]: row `t`
/// becomes its scores under the cone's two extreme weights `(c0, 1-c0)`
/// and `(c1, 1-c1)`, so U-dominance over the cone is plain dominance in
/// the transformed space. Exposed so incremental maintainers can keep a
/// skyline over the transformed rows current without re-deriving the
/// transform.
pub fn u_transform_2d(data: &Dataset, c0: f64, c1: f64) -> Dataset {
    assert_eq!(data.dim(), 2);
    assert!(c0 <= c1);
    let transformed: Vec<[f64; 2]> = data
        .rows()
        .map(|t| {
            [
                c0 * t[0] + (1.0 - c0) * t[1], // score at the low extreme
                c1 * t[0] + (1.0 - c1) * t[1], // score at the high extreme
            ]
        })
        .collect();
    Dataset::from_rows(&transformed).expect("finite transform")
}

/// Sampled over-approximation of U-dominance for non-polyhedral spaces:
/// `a` is deemed to U-dominate `b` when it scores at least as high on every
/// sampled direction and strictly higher on one. More samples → fewer false
/// prunes; the result always contains at least one top-1 tuple for each
/// sampled direction.
pub fn u_skyline_sampled(
    data: &Dataset,
    space: &dyn UtilitySpace,
    samples: usize,
    rng: &mut dyn rand::RngCore,
) -> Vec<u32> {
    assert!(samples >= 1);
    let dirs: Vec<Vec<f64>> = (0..samples).map(|_| space.sample_direction(rng)).collect();
    let candidates = skyline(data);
    // Score matrix: candidate x direction.
    let scores: Vec<Vec<f64>> = candidates
        .iter()
        .map(|&t| dirs.iter().map(|u| rrm_core::utility::dot(u, data.row(t as usize))).collect())
        .collect();
    let mut out = Vec::new();
    'outer: for (i, &t) in candidates.iter().enumerate() {
        for j in 0..candidates.len() {
            if i == j {
                continue;
            }
            let mut ge_all = true;
            let mut gt_some = false;
            for (&sj, &si) in scores[j].iter().zip(&scores[i]) {
                if sj < si - TOL {
                    ge_all = false;
                    break;
                }
                if sj > si + TOL {
                    gt_some = true;
                }
            }
            if ge_all && gt_some {
                continue 'outer; // t pruned
            }
        }
        out.push(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rrm_core::{ConeSpace, FullSpace, SphereCap, WeakRankingSpace};

    fn table1() -> Dataset {
        Dataset::from_rows(&[
            [0.0, 1.0],
            [0.4, 0.95],
            [0.57, 0.75],
            [0.79, 0.6],
            [0.2, 0.5],
            [0.35, 0.3],
            [1.0, 0.0],
        ])
        .unwrap()
    }

    #[test]
    fn full_space_reduces_to_skyline() {
        let d = table1();
        let sky = u_skyline(&d, &FullSpace::new(2)).unwrap();
        assert_eq!(sky, skyline(&d));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let d = table1();
        assert!(matches!(
            u_skyline(&d, &FullSpace::new(3)),
            Err(RrmError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn non_polyhedral_rejected() {
        let d = table1();
        let cap = SphereCap::new(&[1.0, 1.0], 0.2);
        assert!(matches!(u_skyline(&d, &cap), Err(RrmError::InvalidSpace(_))));
    }

    #[test]
    fn weak_ranking_prunes_table1() {
        // U = {u1 >= u2} -> c in [0.5, 1]: weight on A1 at least 0.5.
        // t1 = (0, 1) scores 0.5 at c=0.5 and 0 at c=1; t3 = (0.57, 0.75)
        // scores 0.66 and 0.57 — t3 U-dominates t1, so t1 leaves the
        // restricted skyline.
        let d = table1();
        let space = WeakRankingSpace::new(2, 1);
        let sky = u_skyline(&d, &space).unwrap();
        assert!(!sky.contains(&0), "t1 should be U-dominated: {sky:?}");
        assert!(sky.contains(&6), "t7 = (1,0) is the c=1 winner");
        // Restricted skyline is a subset of the skyline.
        let full = skyline(&d);
        assert!(sky.iter().all(|t| full.contains(t)));
    }

    #[test]
    fn u_skyline_2d_agrees_with_lp_route() {
        // Force the generic LP route by embedding 2D data in 3D with a
        // zeroed third attribute and compare against the 2D specialization.
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..15 {
            let n = rng.random_range(2..40);
            let rows2: Vec<[f64; 2]> =
                (0..n).map(|_| [rng.random::<f64>(), rng.random::<f64>()]).collect();
            let d2 = Dataset::from_rows(&rows2).unwrap();
            let rows3: Vec<[f64; 3]> = rows2.iter().map(|r| [r[0], r[1], 0.0]).collect();
            let d3 = Dataset::from_rows(&rows3).unwrap();

            // U: u1 >= u2 in both encodings (third weight unconstrained but
            // the attribute is constant zero, so it cannot matter).
            let s2 = ConeSpace::new(2, vec![vec![1.0, -1.0]]);
            let s3 = ConeSpace::new(3, vec![vec![1.0, -1.0, 0.0]]);
            let a = u_skyline(&d2, &s2).unwrap();
            let b = u_skyline(&d3, &s3).unwrap();
            assert_eq!(a, b, "rows: {rows2:?}");
        }
    }

    #[test]
    fn restricted_skyline_subset_property_random_3d() {
        let mut rng = StdRng::seed_from_u64(23);
        let rows: Vec<Vec<f64>> =
            (0..60).map(|_| (0..3).map(|_| rng.random::<f64>()).collect()).collect();
        let d = Dataset::from_rows(&rows).unwrap();
        let space = WeakRankingSpace::new(3, 2);
        let restricted = u_skyline(&d, &space).unwrap();
        let full = skyline(&d);
        assert!(!restricted.is_empty());
        assert!(restricted.len() <= full.len());
        assert!(restricted.iter().all(|t| full.contains(t)));
    }

    #[test]
    fn restricted_skyline_contains_every_top1() {
        // Theorem 3's engine: for any u in U, the top-1 tuple must survive.
        let mut rng = StdRng::seed_from_u64(31);
        let rows: Vec<Vec<f64>> =
            (0..50).map(|_| (0..3).map(|_| rng.random::<f64>()).collect()).collect();
        let d = Dataset::from_rows(&rows).unwrap();
        let space = WeakRankingSpace::new(3, 1);
        let restricted = u_skyline(&d, &space).unwrap();
        for _ in 0..200 {
            let u = space.sample_direction(&mut rng);
            let scores = rrm_core::utility::utilities(&d, &u);
            let top = rrm_core::rank::argsort_desc(&scores)[0];
            assert!(restricted.contains(&top), "top-1 {top} pruned for {u:?}");
        }
    }

    #[test]
    fn sampled_u_skyline_for_cap() {
        let mut rng = StdRng::seed_from_u64(41);
        let rows: Vec<Vec<f64>> =
            (0..40).map(|_| (0..3).map(|_| rng.random::<f64>()).collect()).collect();
        let d = Dataset::from_rows(&rows).unwrap();
        let cap = SphereCap::new(&[1.0, 1.0, 1.0], 0.3);
        let sky = u_skyline_sampled(&d, &cap, 200, &mut rng);
        assert!(!sky.is_empty());
        // Contains the top-1 for sampled members of the cap.
        for _ in 0..100 {
            let u = cap.sample_direction(&mut rng);
            let scores = rrm_core::utility::utilities(&d, &u);
            let top = rrm_core::rank::argsort_desc(&scores)[0];
            assert!(sky.contains(&top));
        }
    }
}
