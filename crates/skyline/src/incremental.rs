//! Incrementally maintained skyline: insert/delete without recomputing
//! from scratch.
//!
//! The structure keeps, besides the skyline itself, a *dominated-by-one*
//! buffer: for every non-skyline tuple, the index of **one** tuple that
//! dominates it (any dominator will do — dominance is transitive, so the
//! recorded dominator existing is proof the tuple is off the skyline).
//! That buffer is what makes deletes cheap and exact:
//!
//! * **Insert** — compare the new tuple against current skyline members
//!   only (a dominator of any tuple is always a skyline member or itself
//!   dominated by one). If it survives, members it dominates are demoted
//!   and record the new tuple as their dominator.
//! * **Delete** — the only tuples that can be *promoted* are those whose
//!   recorded dominator was deleted (anything else still has a live
//!   dominator on record). Those candidates are re-checked in descending
//!   attribute-sum order against the surviving skyline plus already
//!   promoted candidates, which is sound and complete for the same reason
//!   the SFS scan is: a dominator always has a strictly larger sum.
//!
//! Because every non-skyline tuple always carries a live dominator, the
//! buffer never "runs out" — promotion is exact with no regional
//! recompute needed. The maintained skyline is the same *set* the batch
//! operators compute, and [`IncrementalSkyline::skyline`] keeps it
//! ascending, so it is bit-identical to [`crate::skyline`] /
//! [`crate::skyline_2d`] over the same rows (`tests` below enforce this
//! against recomputation).

use rrm_core::{AppliedUpdate, Dataset};

use crate::dominance::dominates;

/// Sentinel in the dominator buffer for skyline members.
const NO_DOM: u32 = u32::MAX;

/// A skyline kept current under insert/delete batches.
///
/// The structure does not own the dataset; callers pass the dataset the
/// indices refer to (pre-update for [`IncrementalSkyline::build`],
/// post-update for [`IncrementalSkyline::apply`]). This lets one
/// implementation serve both raw datasets and derived ones (e.g. the 2D
/// solvers' dual-extreme transform), where the update bookkeeping is the
/// same but the row values differ.
#[derive(Debug, Clone)]
pub struct IncrementalSkyline {
    /// Skyline member indices, ascending.
    sky: Vec<u32>,
    /// Per-tuple membership flag (`mask[i]` ⟺ `sky.contains(&i)`).
    mask: Vec<bool>,
    /// For non-members, one index that dominates them; `NO_DOM` for
    /// members.
    dom_of: Vec<u32>,
}

impl IncrementalSkyline {
    /// Build from scratch with one SFS pass, recording the rejecting
    /// member as each pruned tuple's dominator.
    pub fn build(data: &Dataset) -> Self {
        let n = data.n();
        let sums: Vec<f64> = data.rows().map(|r| r.iter().sum()).collect();
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by(|&a, &b| {
            sums[b as usize].partial_cmp(&sums[a as usize]).expect("finite").then(a.cmp(&b))
        });

        let mut sky: Vec<u32> = Vec::new();
        let mut dom_of = vec![NO_DOM; n];
        for &i in &order {
            let row = data.row(i as usize);
            match sky.iter().find(|&&s| dominates(data.row(s as usize), row)) {
                Some(&s) => dom_of[i as usize] = s,
                None => sky.push(i),
            }
        }
        sky.sort_unstable();
        let mut mask = vec![false; n];
        for &s in &sky {
            mask[s as usize] = true;
        }
        Self { sky, mask, dom_of }
    }

    /// Skyline member indices, ascending — bit-identical to what
    /// [`crate::skyline`] returns on the same rows.
    pub fn skyline(&self) -> &[u32] {
        &self.sky
    }

    /// Per-tuple membership mask.
    pub fn mask(&self) -> &[bool] {
        &self.mask
    }

    /// Is tuple `i` on the skyline?
    pub fn is_member(&self, i: u32) -> bool {
        self.mask[i as usize]
    }

    /// Apply one update batch. `new_data` is the post-update dataset the
    /// structure's indices will refer to afterwards; `remap` maps old
    /// indices to new ones (`None` = deleted) and `inserted` lists the new
    /// indices of appended rows, exactly as in [`AppliedUpdate`].
    pub fn apply(&mut self, new_data: &Dataset, remap: &[Option<u32>], inserted: &[u32]) {
        let n_old = self.dom_of.len();
        assert_eq!(remap.len(), n_old, "remap arity must match the maintained dataset");
        let n_new = new_data.n();

        // 1. Remap survivors; collect promotion candidates — old non-sky
        //    survivors whose recorded dominator was deleted.
        let mut dom_of = vec![NO_DOM; n_new];
        let mut work_sky: Vec<u32> = Vec::with_capacity(self.sky.len());
        let mut candidates: Vec<u32> = Vec::new(); // new indices
        for old in 0..n_old {
            let Some(new) = remap[old] else { continue };
            let d = self.dom_of[old];
            if d == NO_DOM {
                // Surviving members stay members: deletion never shrinks a
                // survivor's dominator-free status.
                work_sky.push(new);
            } else {
                match remap[d as usize] {
                    Some(nd) => dom_of[new as usize] = nd,
                    None => candidates.push(new),
                }
            }
        }

        // 2. Promote deletion candidates in descending-sum order (a
        //    dominator always has a strictly larger sum, so checking
        //    against survivors + already-promoted candidates is complete).
        candidates.sort_unstable_by(|&a, &b| {
            let (sa, sb): (f64, f64) =
                (new_data.row(a as usize).iter().sum(), new_data.row(b as usize).iter().sum());
            sb.partial_cmp(&sa).expect("finite").then(a.cmp(&b))
        });
        for &c in &candidates {
            let row = new_data.row(c as usize);
            match work_sky.iter().find(|&&s| dominates(new_data.row(s as usize), row)) {
                Some(&s) => dom_of[c as usize] = s,
                None => work_sky.push(c),
            }
        }

        // 3. Inserts, one at a time: dominance check against current
        //    members; survivors demote the members they dominate.
        for &j in inserted {
            let row = new_data.row(j as usize);
            match work_sky.iter().find(|&&s| dominates(new_data.row(s as usize), row)) {
                Some(&s) => dom_of[j as usize] = s,
                None => {
                    work_sky.retain(|&s| {
                        if dominates(row, new_data.row(s as usize)) {
                            dom_of[s as usize] = j;
                            false
                        } else {
                            true
                        }
                    });
                    work_sky.push(j);
                }
            }
        }

        work_sky.sort_unstable();
        let mut mask = vec![false; n_new];
        for &s in &work_sky {
            mask[s as usize] = true;
        }
        self.sky = work_sky;
        self.mask = mask;
        self.dom_of = dom_of;
    }

    /// [`IncrementalSkyline::apply`] driven directly by an
    /// [`AppliedUpdate`] over the raw dataset.
    pub fn apply_update(&mut self, upd: &AppliedUpdate) {
        self.apply(&upd.new, &upd.remap, &upd.inserted);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skyline;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rrm_core::{apply_updates, UpdateOp};

    fn random_rows(rng: &mut StdRng, n: usize, d: usize) -> Vec<Vec<f64>> {
        // Quantized values make ties and duplicates common.
        (0..n).map(|_| (0..d).map(|_| (rng.random_range(0..8) as f64) / 8.0).collect()).collect()
    }

    #[test]
    fn build_matches_batch_skyline() {
        let mut rng = StdRng::seed_from_u64(7);
        for d in [2usize, 3, 4] {
            let rows = random_rows(&mut rng, 40, d);
            let data = Dataset::from_rows(&rows).unwrap();
            let inc = IncrementalSkyline::build(&data);
            assert_eq!(inc.skyline(), skyline(&data).as_slice(), "d={d}");
            for i in 0..data.n() as u32 {
                assert_eq!(inc.is_member(i), skyline(&data).contains(&i));
            }
        }
    }

    #[test]
    fn dominator_buffer_is_live() {
        let mut rng = StdRng::seed_from_u64(11);
        let rows = random_rows(&mut rng, 50, 3);
        let data = Dataset::from_rows(&rows).unwrap();
        let inc = IncrementalSkyline::build(&data);
        for i in 0..data.n() {
            if !inc.is_member(i as u32) {
                let d = inc.dom_of[i];
                assert_ne!(d, NO_DOM);
                assert!(dominates(data.row(d as usize), data.row(i)), "tuple {i}");
            }
        }
    }

    #[test]
    fn random_update_batches_match_recompute() {
        let mut rng = StdRng::seed_from_u64(23);
        for trial in 0..30 {
            let d_attrs = [2usize, 3, 4][trial % 3];
            let n0 = rng.random_range(3..40);
            let rows = random_rows(&mut rng, n0, d_attrs);
            let mut data = Dataset::from_rows(&rows).unwrap();
            let mut inc = IncrementalSkyline::build(&data);
            for batch in 0..5 {
                let mut ops: Vec<UpdateOp> = Vec::new();
                let deletes = rng.random_range(0..data.n().min(4));
                let mut picked: Vec<usize> = Vec::new();
                while picked.len() < deletes {
                    let i = rng.random_range(0..data.n());
                    if !picked.contains(&i) {
                        picked.push(i);
                        ops.push(UpdateOp::Delete(i));
                    }
                }
                for _ in 0..rng.random_range(1..4) {
                    ops.push(UpdateOp::Insert(
                        (0..d_attrs).map(|_| (rng.random_range(0..8) as f64) / 8.0).collect(),
                    ));
                }
                let upd = apply_updates(&data, &ops).unwrap();
                inc.apply_update(&upd);
                assert_eq!(
                    inc.skyline(),
                    skyline(&upd.new).as_slice(),
                    "trial {trial} batch {batch}"
                );
                data = upd.new;
            }
        }
    }

    #[test]
    fn delete_promotes_from_the_buffer() {
        // 3 dominates 1 and 2; deleting 3 must promote both.
        let data = Dataset::from_rows(&[[0.9, 0.1], [0.4, 0.5], [0.5, 0.4], [0.6, 0.6]]).unwrap();
        let mut inc = IncrementalSkyline::build(&data);
        assert_eq!(inc.skyline(), &[0, 3]);
        let upd = apply_updates(&data, &[UpdateOp::Delete(3)]).unwrap();
        inc.apply_update(&upd);
        assert_eq!(inc.skyline(), skyline(&upd.new).as_slice());
        assert_eq!(inc.skyline(), &[0, 1, 2]);
    }

    #[test]
    fn insert_demotes_dominated_members() {
        let data = Dataset::from_rows(&[[0.4, 0.5], [0.5, 0.4], [0.1, 0.1]]).unwrap();
        let mut inc = IncrementalSkyline::build(&data);
        assert_eq!(inc.skyline(), &[0, 1]);
        let upd = apply_updates(&data, &[UpdateOp::Insert(vec![0.6, 0.6])]).unwrap();
        inc.apply_update(&upd);
        assert_eq!(inc.skyline(), &[3]);
        assert_eq!(inc.skyline(), skyline(&upd.new).as_slice());
    }
}
