//! `O(n log n)` skyline for two attributes.

use rrm_core::Dataset;

/// Indices of the skyline tuples of a 2D dataset, ascending by index.
///
/// Exact duplicates are all kept (dominance requires strictness), matching
/// [`crate::dominance::dominates`].
///
/// # Panics
/// Panics when `data.dim() != 2`.
pub fn skyline_2d(data: &Dataset) -> Vec<u32> {
    assert_eq!(data.dim(), 2, "skyline_2d requires d = 2");
    let n = data.n();
    // Sort indices by A1 descending, A2 descending, index ascending.
    let mut idx: Vec<u32> = (0..n as u32).collect();
    idx.sort_unstable_by(|&a, &b| {
        let (ra, rb) = (data.row(a as usize), data.row(b as usize));
        rb[0]
            .partial_cmp(&ra[0])
            .expect("finite")
            .then(rb[1].partial_cmp(&ra[1]).expect("finite"))
            .then(a.cmp(&b))
    });

    let mut out = Vec::new();
    // Max A2 among tuples with strictly larger A1 than the current group.
    let mut prev_max_a2 = f64::NEG_INFINITY;
    let mut i = 0;
    while i < n {
        // Group of equal A1.
        let a1 = data.row(idx[i] as usize)[0];
        let mut j = i;
        let mut group_max_a2 = f64::NEG_INFINITY;
        while j < n && data.row(idx[j] as usize)[0] == a1 {
            group_max_a2 = group_max_a2.max(data.row(idx[j] as usize)[1]);
            j += 1;
        }
        // A tuple survives iff it has the group's best A2 (otherwise a
        // same-A1, higher-A2 member dominates it) and beats every tuple
        // with strictly larger A1 on A2.
        for &id in &idx[i..j] {
            let a2 = data.row(id as usize)[1];
            if a2 == group_max_a2 && a2 > prev_max_a2 {
                out.push(id);
            }
        }
        prev_max_a2 = prev_max_a2.max(group_max_a2);
        i = j;
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominance::dominates;

    fn brute_force(data: &Dataset) -> Vec<u32> {
        (0..data.n() as u32)
            .filter(|&i| {
                !(0..data.n() as u32)
                    .any(|j| j != i && dominates(data.row(j as usize), data.row(i as usize)))
            })
            .collect()
    }

    #[test]
    fn table_one_skyline() {
        // Table I: skyline = {t1, t2, t3, t4, t7} (Figure 4's skyline lines
        // l1, l2, l3, l4, l7).
        let d = Dataset::from_rows(&[
            [0.0, 1.0],
            [0.4, 0.95],
            [0.57, 0.75],
            [0.79, 0.6],
            [0.2, 0.5],
            [0.35, 0.3],
            [1.0, 0.0],
        ])
        .unwrap();
        assert_eq!(skyline_2d(&d), vec![0, 1, 2, 3, 6]);
    }

    #[test]
    fn duplicates_are_kept() {
        let d = Dataset::from_rows(&[[0.5, 0.5], [0.5, 0.5], [0.2, 0.2]]).unwrap();
        assert_eq!(skyline_2d(&d), vec![0, 1]);
    }

    #[test]
    fn equal_a1_groups() {
        // Same A1: only the max-A2 member survives; it also shadows later
        // groups.
        let d = Dataset::from_rows(&[[0.5, 0.3], [0.5, 0.8], [0.4, 0.7], [0.4, 0.9]]).unwrap();
        assert_eq!(skyline_2d(&d), vec![1, 3]);
    }

    #[test]
    fn single_tuple() {
        let d = Dataset::from_rows(&[[0.1, 0.2]]).unwrap();
        assert_eq!(skyline_2d(&d), vec![0]);
    }

    #[test]
    fn totally_ordered_chain() {
        let d = Dataset::from_rows(&[[0.1, 0.1], [0.2, 0.2], [0.3, 0.3]]).unwrap();
        assert_eq!(skyline_2d(&d), vec![2]);
    }

    #[test]
    fn anti_chain_keeps_everything() {
        let d = Dataset::from_rows(&[[0.1, 0.9], [0.5, 0.5], [0.9, 0.1]]).unwrap();
        assert_eq!(skyline_2d(&d), vec![0, 1, 2]);
    }

    #[test]
    fn matches_brute_force_on_random_data() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..50 {
            let n = rng.random_range(1..60);
            // Quantized values make ties common.
            let rows: Vec<[f64; 2]> = (0..n)
                .map(|_| {
                    [
                        (rng.random_range(0..10) as f64) / 10.0,
                        (rng.random_range(0..10) as f64) / 10.0,
                    ]
                })
                .collect();
            let d = Dataset::from_rows(&rows).unwrap();
            assert_eq!(skyline_2d(&d), brute_force(&d), "trial {trial}: {rows:?}");
        }
    }
}
