//! Skyline and restricted-skyline operators.
//!
//! Theorem 3 of the paper: the solution of RRRM can always be drawn from
//! the *U-skyline* `Sky_U(D)` (Ciaccia & Martinenghi's restricted skyline),
//! and the solution of RRM from the classic skyline `Sky(D)`. Every solver
//! in this workspace prunes its candidate set with these operators.
//!
//! * [`dominance`] — pairwise dominance and LP-based U-dominance tests;
//! * [`sky2d`] — `O(n log n)` sort-and-sweep skyline for `d = 2`;
//! * [`skyhd`] — sort-filter skyline (SFS) for arbitrary `d`;
//! * [`restricted`] — `Sky_U(D)` for polyhedral spaces (exact, via LP, with
//!   an `O(n log n)` specialization for 2D cones) and a sampled
//!   approximation for non-polyhedral spaces;
//! * [`incremental`] — a skyline kept current under insert/delete batches
//!   via a dominated-by-one buffer, for `Session::update`.

pub mod dominance;
pub mod incremental;
pub mod restricted;
pub mod sky2d;
pub mod skyhd;

pub use dominance::{dominates, u_dominates};
pub use incremental::IncrementalSkyline;
pub use restricted::{u_skyline, u_skyline_sampled};
pub use sky2d::skyline_2d;
pub use skyhd::skyline;
