//! Sort-filter skyline (SFS) for arbitrary dimensionality.
//!
//! Tuples are scanned in descending attribute-sum order; a dominating tuple
//! always has a strictly larger sum (it is ≥ everywhere and > somewhere),
//! so comparing each tuple only against already-accepted skyline members is
//! sound. Worst case `O(n·s·d)` with `s` the skyline size — the standard
//! practical choice for the moderate dimensionalities of the paper
//! (`d ≤ 6`).

use rrm_core::Dataset;

use crate::dominance::dominates;
use crate::sky2d::skyline_2d;

/// Indices of the skyline tuples, ascending by index. Dispatches to the
/// specialized 2D sweep when `d = 2`.
pub fn skyline(data: &Dataset) -> Vec<u32> {
    if data.dim() == 2 {
        return skyline_2d(data);
    }
    let n = data.n();
    let mut idx: Vec<u32> = (0..n as u32).collect();
    let sums: Vec<f64> = data.rows().map(|r| r.iter().sum()).collect();
    idx.sort_unstable_by(|&a, &b| {
        sums[b as usize].partial_cmp(&sums[a as usize]).expect("finite").then(a.cmp(&b))
    });

    let mut out: Vec<u32> = Vec::new();
    for &i in &idx {
        let row = data.row(i as usize);
        if !out.iter().any(|&s| dominates(data.row(s as usize), row)) {
            out.push(i);
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn brute_force(data: &Dataset) -> Vec<u32> {
        (0..data.n() as u32)
            .filter(|&i| {
                !(0..data.n() as u32)
                    .any(|j| j != i && dominates(data.row(j as usize), data.row(i as usize)))
            })
            .collect()
    }

    #[test]
    fn three_dims_hand_case() {
        let d = Dataset::from_rows(&[
            [0.9, 0.1, 0.1],
            [0.1, 0.9, 0.1],
            [0.1, 0.1, 0.9],
            [0.5, 0.5, 0.5],
            [0.4, 0.4, 0.4], // dominated by the previous tuple
        ])
        .unwrap();
        assert_eq!(skyline(&d), vec![0, 1, 2, 3]);
    }

    #[test]
    fn dispatches_to_2d() {
        let d = Dataset::from_rows(&[[0.1, 0.9], [0.9, 0.1], [0.05, 0.05]]).unwrap();
        assert_eq!(skyline(&d), skyline_2d(&d));
    }

    #[test]
    fn matches_brute_force_random() {
        let mut rng = StdRng::seed_from_u64(123);
        for trial in 0..40 {
            let n = rng.random_range(1..50);
            let d_attrs = rng.random_range(3..=5);
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..d_attrs).map(|_| (rng.random_range(0..8) as f64) / 8.0).collect())
                .collect();
            let d = Dataset::from_rows(&rows).unwrap();
            assert_eq!(skyline(&d), brute_force(&d), "trial {trial}");
        }
    }

    #[test]
    fn duplicates_survive_in_hd() {
        let d = Dataset::from_rows(&[[0.5, 0.5, 0.5], [0.5, 0.5, 0.5], [0.1, 0.1, 0.1]]).unwrap();
        assert_eq!(skyline(&d), vec![0, 1]);
    }

    #[test]
    fn correlated_data_small_skyline() {
        // On a strictly increasing chain only the top tuple survives.
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| {
                let v = i as f64 / 20.0;
                vec![v, v + 0.01, v + 0.02]
            })
            .collect();
        let d = Dataset::from_rows(&rows).unwrap();
        assert_eq!(skyline(&d), vec![19]);
    }
}
