//! Dominance and U-dominance tests (Definition 5 of the paper).

use rrm_lp::cone;

/// Classic dominance: `a` dominates `b` when `a[i] ≥ b[i]` everywhere and
/// `a[i] > b[i]` somewhere.
#[inline]
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strict = false;
    for (x, y) in a.iter().zip(b) {
        if x < y {
            return false;
        }
        if x > y {
            strict = true;
        }
    }
    strict
}

/// U-dominance for a polyhedral cone `U = {u ≥ 0 : rows·u ≥ 0}`:
/// `a ≻_U b` iff `w(u,a) ≥ w(u,b)` for all `u ∈ U` and `w(v,a) > w(v,b)`
/// for some `v ∈ U` (Definition 5).
///
/// Both conditions are LPs over the simplex slice of the cone:
/// `min (a-b)·u ≥ 0` and `max (a-b)·u > 0`. Classic dominance is checked
/// first as a fast path (it implies the min condition for any `U ⊆ L`).
pub fn u_dominates(a: &[f64], b: &[f64], cone_rows: &[Vec<f64>], tol: f64) -> bool {
    let delta: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    if delta.iter().all(|&v| v == 0.0) {
        return false; // identical tuples never dominate each other
    }
    if !dominates_delta(&delta) {
        // Need the LP for the "everywhere at least as good" half.
        match cone::min_dot(&delta, cone_rows) {
            Some(min) if min >= -tol => {}
            _ => return false,
        }
    }
    // "Somewhere strictly better" half.
    matches!(cone::max_dot(&delta, cone_rows), Some(max) if max > tol)
}

fn dominates_delta(delta: &[f64]) -> bool {
    let mut strict = false;
    for &v in delta {
        if v < 0.0 {
            return false;
        }
        if v > 0.0 {
            strict = true;
        }
    }
    strict
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-9;

    #[test]
    fn plain_dominance() {
        assert!(dominates(&[0.5, 0.5], &[0.5, 0.4]));
        assert!(dominates(&[0.6, 0.5], &[0.5, 0.4]));
        assert!(!dominates(&[0.5, 0.5], &[0.5, 0.5])); // needs strictness
        assert!(!dominates(&[0.5, 0.3], &[0.4, 0.4])); // incomparable
        assert!(!dominates(&[0.5, 0.4], &[0.5, 0.5]));
    }

    #[test]
    fn full_space_u_dominance_equals_dominance() {
        let pairs: &[([f64; 2], [f64; 2])] = &[
            ([0.5, 0.5], [0.5, 0.4]),
            ([0.5, 0.3], [0.4, 0.4]),
            ([0.7, 0.1], [0.1, 0.7]),
            ([0.5, 0.5], [0.5, 0.5]),
        ];
        for (a, b) in pairs {
            assert_eq!(u_dominates(a, b, &[], TOL), dominates(a, b), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn restricted_dominance_is_weaker_requirement() {
        // U = {u1 >= u2}. a = (0.8, 0.1), b = (0.5, 0.3): a is not a plain
        // dominator (worse on A2), but for every u with u1 >= u2,
        // (a-b)·u = 0.3 u1 - 0.2 u2 >= 0.1 u2 >= 0 — so a U-dominates b.
        let rows = vec![vec![1.0, -1.0]];
        let a = [0.8, 0.1];
        let b = [0.5, 0.3];
        assert!(!dominates(&a, &b));
        assert!(u_dominates(&a, &b, &rows, TOL));
        // In the full space it is not a dominance relation.
        assert!(!u_dominates(&a, &b, &[], TOL));
    }

    #[test]
    fn u_dominance_needs_strictness_inside_u() {
        // U = {u2 >= u1} mirrored: a better only on A1, equal on A2, but U
        // includes u = (0, 1) where they tie... strictness still holds for
        // any u with u1 > 0, which U contains, so a U-dominates b.
        let rows = vec![vec![-1.0, 1.0]];
        assert!(u_dominates(&[0.6, 0.5], &[0.4, 0.5], &rows, TOL));
        // Degenerate cone U = {u : u1 = 0} (rows force u1 <= 0): only
        // direction (0,1). a and b tie there: no strict witness.
        let rows = vec![vec![-1.0, 0.0]];
        assert!(!u_dominates(&[0.6, 0.5], &[0.4, 0.5], &rows, TOL));
        // ...but a tuple better on A2 does dominate in that cone.
        assert!(u_dominates(&[0.1, 0.6], &[0.9, 0.5], &rows, TOL));
    }

    #[test]
    fn identical_tuples_never_dominate() {
        assert!(!u_dominates(&[0.3, 0.3], &[0.3, 0.3], &[], TOL));
        let rows = vec![vec![1.0, -1.0]];
        assert!(!u_dominates(&[0.3, 0.3], &[0.3, 0.3], &rows, TOL));
    }

    #[test]
    fn u_dominance_in_3d_weak_ranking() {
        // U = {u1 >= u2 >= u3}. a trades a big win on A1 for small losses
        // on A2, A3: (a-b) = (0.3, -0.1, -0.1). Worst case in U is
        // u = (1/3, 1/3, 1/3): 0.1/3 > 0 — dominated.
        let rows = vec![vec![1.0, -1.0, 0.0], vec![0.0, 1.0, -1.0]];
        assert!(u_dominates(&[0.8, 0.2, 0.2], &[0.5, 0.3, 0.3], &rows, TOL));
        // (a-b) = (0.1, -0.2, 0.0): at u = (1/3,1/3,1/3) the delta is
        // negative — not dominated.
        assert!(!u_dominates(&[0.6, 0.1, 0.3], &[0.5, 0.3, 0.3], &rows, TOL));
    }
}
