//! Criterion timing for the 2D figures (scaled-down sizes; the full
//! parameter sweeps live in the `repro` binary).
//!
//! * `fig09_2d_vs_n` — 2DRRM vs 2DRRR across dataset sizes (Fig. 9);
//! * `fig10_2d_vs_r` — the same across output sizes (Fig. 10);
//! * `fig11_island` / `fig12_nba` — the real-data stand-ins (Figs. 11–12).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rrm_2d::{rrm_2d, rrm_via_rrr_2d, Rrm2dOptions};
use rrm_core::FullSpace;
use rrm_data::real_sim::{island_sim, nba_sim};
use rrm_data::synthetic::anticorrelated;

fn fig09_2d_vs_n(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig09_2d_vs_n");
    for &n in &[1_000usize, 4_000, 16_000] {
        let data = anticorrelated(n, 2, 9);
        g.bench_with_input(BenchmarkId::new("2DRRM", n), &data, |b, d| {
            b.iter(|| black_box(rrm_2d(d, 5, &FullSpace::new(2), Rrm2dOptions::default())))
        });
        g.bench_with_input(BenchmarkId::new("2DRRR", n), &data, |b, d| {
            b.iter(|| black_box(rrm_via_rrr_2d(d, 5, &FullSpace::new(2))))
        });
    }
    g.finish();
}

fn fig10_2d_vs_r(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_2d_vs_r");
    let data = anticorrelated(4_000, 2, 10);
    for &r in &[5usize, 7, 10] {
        g.bench_with_input(BenchmarkId::new("2DRRM", r), &r, |b, &r| {
            b.iter(|| black_box(rrm_2d(&data, r, &FullSpace::new(2), Rrm2dOptions::default())))
        });
        g.bench_with_input(BenchmarkId::new("2DRRR", r), &r, |b, &r| {
            b.iter(|| black_box(rrm_via_rrr_2d(&data, r, &FullSpace::new(2))))
        });
    }
    g.finish();
}

fn fig11_island(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_island");
    for &n in &[10_000usize, 20_000] {
        let data = island_sim(n, 11);
        g.bench_with_input(BenchmarkId::new("2DRRM", n), &data, |b, d| {
            b.iter(|| black_box(rrm_2d(d, 5, &FullSpace::new(2), Rrm2dOptions::default())))
        });
        g.bench_with_input(BenchmarkId::new("2DRRR", n), &data, |b, d| {
            b.iter(|| black_box(rrm_via_rrr_2d(d, 5, &FullSpace::new(2))))
        });
    }
    g.finish();
}

fn fig12_nba(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_nba");
    for &n in &[5_000usize, 20_000] {
        let data = nba_sim(n, 5, 12).project(&[0, 1]).unwrap();
        g.bench_with_input(BenchmarkId::new("2DRRM", n), &data, |b, d| {
            b.iter(|| black_box(rrm_2d(d, 5, &FullSpace::new(2), Rrm2dOptions::default())))
        });
        g.bench_with_input(BenchmarkId::new("2DRRR", n), &data, |b, d| {
            b.iter(|| black_box(rrm_via_rrr_2d(d, 5, &FullSpace::new(2))))
        });
    }
    g.finish();
}

criterion_group!(
    name = fig_2d;
    config = Criterion::default().sample_size(10);
    targets = fig09_2d_vs_n, fig10_2d_vs_r, fig11_island, fig12_nba
);
criterion_main!(fig_2d);
