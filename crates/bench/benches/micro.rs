//! Micro-benchmarks of the substrates every solver is built on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rrm_core::rank::top_k;
use rrm_core::utility::utilities;
use rrm_core::FullSpace;
use rrm_core::UtilitySpace;
use rrm_data::synthetic::{anticorrelated, independent};
use rrm_geom::dual::DualLine;
use rrm_geom::events::crossings_with_tracked;
use rrm_geom::polar::polar_grid;
use rrm_lp::{LinearProgram, Relation};
use rrm_setcover::{greedy_set_cover, naive_greedy_set_cover};
use rrm_skyline::skyline;

fn bench_skyline(c: &mut Criterion) {
    let mut g = c.benchmark_group("skyline");
    for &n in &[1_000usize, 10_000] {
        let d2 = anticorrelated(n, 2, 1);
        g.bench_with_input(BenchmarkId::new("2d_anti", n), &d2, |b, d| {
            b.iter(|| black_box(skyline(d)))
        });
        let d4 = anticorrelated(n, 4, 1);
        g.bench_with_input(BenchmarkId::new("4d_anti", n), &d4, |b, d| {
            b.iter(|| black_box(skyline(d)))
        });
    }
    g.finish();
}

fn bench_topk(c: &mut Criterion) {
    let mut g = c.benchmark_group("topk");
    let data = independent(100_000, 4, 2);
    let u = vec![0.3, 0.3, 0.2, 0.2];
    let scores = utilities(&data, &u);
    for &k in &[10usize, 100, 1000] {
        g.bench_with_input(BenchmarkId::new("select", k), &k, |b, &k| {
            b.iter(|| black_box(top_k(&scores, k)))
        });
    }
    g.finish();
}

fn bench_lp(c: &mut Criterion) {
    let mut g = c.benchmark_group("lp");
    // A k-set-sized feasibility program: d variables, many rows.
    for &rows in &[50usize, 500] {
        g.bench_with_input(BenchmarkId::new("feasibility", rows), &rows, |b, &rows| {
            let data = independent(rows, 4, 3);
            b.iter(|| {
                let mut lp = LinearProgram::maximize(&[0.0, 0.0, 0.0, 1.0]);
                lp.constrain(&[1.0, 1.0, 1.0, 0.0], Relation::Eq, 1.0);
                for row in data.rows() {
                    lp.constrain(&[row[0], row[1], row[2], -1.0], Relation::Ge, 0.0);
                }
                black_box(lp.solve())
            })
        });
    }
    g.finish();
}

fn bench_setcover(c: &mut Criterion) {
    let mut g = c.benchmark_group("setcover");
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(4);
    let universe = 5_000usize;
    let mut sets: Vec<Vec<u32>> = (0..2_000)
        .map(|_| {
            let len = rng.random_range(1..50);
            (0..len).map(|_| rng.random_range(0..universe as u32)).collect()
        })
        .collect();
    sets.push((0..universe as u32).collect());
    g.bench_function("lazy_greedy", |b| b.iter(|| black_box(greedy_set_cover(universe, &sets))));
    g.bench_function("naive_greedy", |b| {
        b.iter(|| black_box(naive_greedy_set_cover(universe, &sets)))
    });
    g.finish();
}

fn bench_events(c: &mut Criterion) {
    let mut g = c.benchmark_group("events");
    let data = anticorrelated(5_000, 2, 5);
    let lines = DualLine::from_dataset(&data);
    let sky = skyline(&data);
    g.bench_function("skyline_crossings_5k", |b| {
        b.iter(|| black_box(crossings_with_tracked(&lines, &sky, 0.0, 1.0)))
    });
    g.finish();
}

fn bench_discretize(c: &mut Criterion) {
    let mut g = c.benchmark_group("discretize");
    g.bench_function("polar_grid_d4_g6", |b| b.iter(|| black_box(polar_grid(4, 6, true))));
    g.bench_function("sample_1k_d4", |b| {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let space = FullSpace::new(4);
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(6);
            let v: Vec<Vec<f64>> = (0..1000).map(|_| space.sample_direction(&mut rng)).collect();
            black_box(v)
        })
    });
    g.finish();
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(10);
    targets = bench_skyline, bench_topk, bench_lp, bench_setcover, bench_events,
              bench_discretize
);
criterion_main!(micro);
