//! Criterion timing for the HD figures (scaled sizes; full sweeps with
//! quality columns live in the `repro` binary).
//!
//! * `fig13_hd_vs_n` — the four HD algorithms across dataset sizes
//!   (Figs. 13–15's time series);
//! * `fig16_hd_vs_d` — across dimensions (Figs. 16–18);
//! * `fig19_hd_vs_r` — across output sizes (Figs. 19–21);
//! * `fig22_hd_vs_delta` — HDRRM across δ (Figs. 22–24);
//! * `fig25_rrrm` — restricted-space runs (Figs. 25–26);
//! * `fig27_nba` / `fig28_weather` — the real-data stand-ins.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rrm_core::{FullSpace, WeakRankingSpace};
use rrm_data::real_sim::{nba_sim, weather_sim};
use rrm_data::synthetic::anticorrelated;
use rrm_hd::{
    hdrrm, mdrc, mdrms, mdrrr_r_rrm, HdrrmOptions, MdrcOptions, MdrmsOptions, MdrrrROptions,
};

/// Bench-scale options: small fixed sample budgets so Criterion iterations
/// stay in the tens of milliseconds.
fn hopts() -> HdrrmOptions {
    HdrrmOptions { m_override: Some(1_000), ..Default::default() }
}

fn ropts() -> MdrrrROptions {
    MdrrrROptions { samples: 2_000, ..Default::default() }
}

fn mopts() -> MdrmsOptions {
    MdrmsOptions { samples: 500, ..Default::default() }
}

fn fig13_hd_vs_n(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13_hd_vs_n");
    for &n in &[1_000usize, 4_000] {
        let data = anticorrelated(n, 4, 13);
        let space = FullSpace::new(4);
        g.bench_with_input(BenchmarkId::new("HDRRM", n), &data, |b, d| {
            b.iter(|| black_box(hdrrm(d, 10, &space, hopts())))
        });
        g.bench_with_input(BenchmarkId::new("MDRRRr", n), &data, |b, d| {
            b.iter(|| black_box(mdrrr_r_rrm(d, 10, &space, ropts())))
        });
        g.bench_with_input(BenchmarkId::new("MDRC", n), &data, |b, d| {
            b.iter(|| black_box(mdrc(d, 10, &space, MdrcOptions::default())))
        });
        g.bench_with_input(BenchmarkId::new("MDRMS", n), &data, |b, d| {
            b.iter(|| black_box(mdrms(d, 10, &space, mopts())))
        });
    }
    g.finish();
}

fn fig16_hd_vs_d(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig16_hd_vs_d");
    for &d in &[3usize, 5] {
        let data = anticorrelated(2_000, d, 16);
        g.bench_with_input(BenchmarkId::new("HDRRM", d), &data, |b, dat| {
            b.iter(|| black_box(hdrrm(dat, 10, &FullSpace::new(d), hopts())))
        });
        g.bench_with_input(BenchmarkId::new("MDRC", d), &data, |b, dat| {
            b.iter(|| black_box(mdrc(dat, 10, &FullSpace::new(d), MdrcOptions::default())))
        });
    }
    g.finish();
}

fn fig19_hd_vs_r(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig19_hd_vs_r");
    let data = anticorrelated(2_000, 4, 19);
    for &r in &[10usize, 15] {
        g.bench_with_input(BenchmarkId::new("HDRRM", r), &r, |b, &r| {
            b.iter(|| black_box(hdrrm(&data, r, &FullSpace::new(4), hopts())))
        });
        g.bench_with_input(BenchmarkId::new("MDRRRr", r), &r, |b, &r| {
            b.iter(|| black_box(mdrrr_r_rrm(&data, r, &FullSpace::new(4), ropts())))
        });
    }
    g.finish();
}

fn fig22_hd_vs_delta(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig22_hd_vs_delta");
    let data = anticorrelated(2_000, 4, 22);
    for &(label, m) in &[("d010", 400usize), ("d003", 4_000), ("d001", 16_000)] {
        // m stands in for δ: the formula maps δ ∈ {0.1, 0.03, 0.01} to
        // roughly these sample counts at this n.
        g.bench_with_input(BenchmarkId::new("HDRRM", label), &m, |b, &m| {
            let opts = HdrrmOptions { m_override: Some(m), ..Default::default() };
            b.iter(|| black_box(hdrrm(&data, 10, &FullSpace::new(4), opts)))
        });
    }
    g.finish();
}

fn fig25_rrrm(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig25_rrrm");
    let data = anticorrelated(2_000, 4, 25);
    let space = WeakRankingSpace::new(4, 2);
    g.bench_function("HDRRM_restricted", |b| {
        b.iter(|| black_box(hdrrm(&data, 10, &space, hopts())))
    });
    g.bench_function("MDRRRr_restricted", |b| {
        b.iter(|| black_box(mdrrr_r_rrm(&data, 10, &space, ropts())))
    });
    g.finish();
}

fn fig27_nba(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig27_nba");
    let data = nba_sim(5_000, 5, 27);
    g.bench_function("HDRRM", |b| {
        b.iter(|| black_box(hdrrm(&data, 10, &FullSpace::new(5), hopts())))
    });
    g.bench_function("MDRC", |b| {
        b.iter(|| black_box(mdrc(&data, 10, &FullSpace::new(5), MdrcOptions::default())))
    });
    g.finish();
}

fn fig28_weather(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig28_weather");
    let data = weather_sim(20_000, 4, 28);
    g.bench_function("HDRRM", |b| {
        b.iter(|| black_box(hdrrm(&data, 10, &FullSpace::new(4), hopts())))
    });
    g.bench_function("MDRC", |b| {
        b.iter(|| black_box(mdrc(&data, 10, &FullSpace::new(4), MdrcOptions::default())))
    });
    g.bench_function("MDRMS", |b| {
        b.iter(|| black_box(mdrms(&data, 10, &FullSpace::new(4), mopts())))
    });
    g.finish();
}

criterion_group!(
    name = fig_hd;
    config = Criterion::default().sample_size(10);
    targets = fig13_hd_vs_n, fig16_hd_vs_d, fig19_hd_vs_r, fig22_hd_vs_delta,
              fig25_rrrm, fig27_nba, fig28_weather
);
criterion_main!(fig_hd);
