//! Scoring-kernel benchmarks: naive row-major scalar scoring vs. the
//! cache-blocked SoA kernel, plus the fused reductions, at the (n, d)
//! shapes the HD experiments actually run. Single-threaded by design —
//! this is the one bench family whose numbers mean something on a 1-core
//! machine (`repro kernels` writes the JSON counterpart).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rrm_core::kernel::{self, ScoreScratch};
use rrm_core::utility::dot;
use rrm_core::{Dataset, FullSpace, UtilitySpace};
use rrm_data::synthetic::independent;

fn directions(d: usize, count: usize) -> Vec<Vec<f64>> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(7);
    let space = FullSpace::new(d);
    (0..count).map(|_| space.sample_direction(&mut rng)).collect()
}

/// The pre-kernel hot loop: reused buffer, row-major scalar dots.
fn naive_batch(data: &Dataset, dirs: &[Vec<f64>], buf: &mut Vec<f64>) -> f64 {
    let mut sink = 0.0;
    for u in dirs {
        buf.clear();
        buf.extend(data.rows().map(|row| dot(u, row)));
        sink += buf[buf.len() - 1];
    }
    sink
}

fn bench_batch_scoring(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_batch_scoring");
    for &(n, d) in &[(10_000usize, 2usize), (10_000, 4), (10_000, 8), (100_000, 4)] {
        let data = independent(n, d, 41);
        let dirs = directions(d, 64);
        let label = format!("n{n}_d{d}");
        g.bench_with_input(BenchmarkId::new("naive", &label), &data, |b, data| {
            let mut buf = Vec::with_capacity(n);
            b.iter(|| black_box(naive_batch(data, &dirs, &mut buf)))
        });
        let soa = data.soa();
        g.bench_with_input(BenchmarkId::new("blocked", &label), &data, |b, _| {
            let mut scratch = ScoreScratch::new();
            b.iter(|| {
                let mut sink = 0.0;
                kernel::for_each_scores(soa, &dirs, &mut scratch, |_, scores| {
                    sink += scores[scores.len() - 1];
                });
                black_box(sink)
            })
        });
    }
    g.finish();
}

fn bench_fused_reductions(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_fused");
    let (n, d) = (100_000usize, 4usize);
    let data = independent(n, d, 41);
    let dirs = directions(d, 16);
    let soa = data.soa();
    g.bench_function("max_score", |b| {
        let mut scratch = ScoreScratch::new();
        b.iter(|| {
            let mut sink = 0.0;
            for u in &dirs {
                sink += kernel::max_score(soa, u, &mut scratch);
            }
            black_box(sink)
        })
    });
    let set: Vec<u32> = (0..n as u32).step_by(997).collect();
    g.bench_function("rank_regret_of_set", |b| {
        let mut scratch = ScoreScratch::new();
        b.iter(|| {
            let mut sink = 0usize;
            for u in &dirs {
                sink += kernel::rank_regret_of_set(soa, u, &set, &mut scratch);
            }
            black_box(sink)
        })
    });
    g.finish();
}

criterion_group!(kernels, bench_batch_scoring, bench_fused_reductions);
criterion_main!(kernels);
