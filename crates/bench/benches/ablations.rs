//! Timing ablations of the design choices documented in DESIGN.md.
//!
//! * `ablation_sweep` — the paper's full arrangement sweep vs the
//!   skyline-crossing event stream inside 2DRRM (identical output);
//! * `ablation_lazy_greedy` — lazy vs naive greedy set cover on an
//!   ASMS-shaped instance;
//! * `ablation_candidates` — HDRRM with and without skyline candidate
//!   pre-filtering;
//! * `ablation_mdrrr_exact` — the exact k-set enumeration cost curve that
//!   makes MDRRR impractical (the paper's "a few hundred tuples").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rrm_2d::{rrm_2d, Rrm2dOptions};
use rrm_core::FullSpace;
use rrm_data::synthetic::{anticorrelated, independent};
use rrm_hd::{enumerate_ksets, hdrrm, HdrrmOptions, KsetLimits};
use rrm_setcover::{greedy_set_cover, naive_greedy_set_cover};

fn ablation_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_sweep");
    for &n in &[1_000usize, 4_000] {
        let data = anticorrelated(n, 2, 41);
        g.bench_with_input(BenchmarkId::new("event_stream", n), &data, |b, d| {
            let opts = Rrm2dOptions { use_full_sweep: false, ..Default::default() };
            b.iter(|| black_box(rrm_2d(d, 5, &FullSpace::new(2), opts)))
        });
        g.bench_with_input(BenchmarkId::new("full_sweep", n), &data, |b, d| {
            let opts = Rrm2dOptions { use_full_sweep: true, ..Default::default() };
            b.iter(|| black_box(rrm_2d(d, 5, &FullSpace::new(2), opts)))
        });
    }
    g.finish();
}

fn ablation_lazy_greedy(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_lazy_greedy");
    // ASMS-shaped instance: many small sets (tuples covering the vectors
    // whose top-k they enter), universe = discretized directions.
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(42);
    let universe = 8_000usize;
    let mut sets: Vec<Vec<u32>> = (0..4_000)
        .map(|_| {
            let len = rng.random_range(1..30);
            (0..len).map(|_| rng.random_range(0..universe as u32)).collect()
        })
        .collect();
    sets.push((0..universe as u32).collect());
    g.bench_function("lazy", |b| b.iter(|| black_box(greedy_set_cover(universe, &sets))));
    g.bench_function("naive", |b| b.iter(|| black_box(naive_greedy_set_cover(universe, &sets))));
    g.finish();
}

fn ablation_candidates(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_candidates");
    let data = independent(10_000, 4, 43);
    for (label, sky) in [("skyline", true), ("all", false)] {
        g.bench_function(label, |b| {
            let opts = HdrrmOptions {
                m_override: Some(1_000),
                skyline_candidates: sky,
                ..Default::default()
            };
            b.iter(|| black_box(hdrrm(&data, 10, &FullSpace::new(4), opts)))
        });
    }
    g.finish();
}

fn ablation_mdrrr_exact(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_mdrrr_exact");
    g.sample_size(10);
    for &n in &[20usize, 40] {
        let data = independent(n, 3, 44);
        g.bench_with_input(BenchmarkId::new("enumerate_k3", n), &data, |b, d| {
            b.iter(|| black_box(enumerate_ksets(d, 3, &[], KsetLimits::default())))
        });
    }
    g.finish();
}

criterion_group!(
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets = ablation_sweep, ablation_lazy_greedy, ablation_candidates,
              ablation_mdrrr_exact
);
criterion_main!(ablations);
