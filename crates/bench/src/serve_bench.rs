//! `repro serve`: the replayed-trace load harness for `rrm_serve`.
//!
//! Starts the server in-process, replays a synthetic mixed
//! minimize/represent trace from real client threads over real TCP, and
//! measures client-observed latency per request. Three scenarios:
//!
//! * `single_tenant_hot` — one warm tenant, synchronous clients
//!   hammering the same handful of requests (prepared-state reuse);
//! * `multi_tenant_mixed` — three tenants, mixed ops/algorithms, every
//!   request under a generous deadline (exercises the budget mapping);
//! * `overload` — a small in-flight limit and queue under a pipelined
//!   burst: admission control must reject immediately while accepted
//!   requests keep a bounded p99.
//!
//! Every `ok` response is then replayed through an in-process [`Session`]
//! built from the same tenant spec and the server's own calibration, and
//! must match bit-for-bit (indices, certificate, algorithm) — the
//! determinism contract extended over the wire. Results land in
//! `BENCH_serve.json` under the uniform schema/machine header.

use std::collections::HashMap;
use std::time::Instant;

use rank_regret::{Algorithm, ExecPolicy, Session};
use rrm_serve::{
    effective_request, parse_request, Client, Json, ServerConfig, ServerHandle, SyntheticKind,
    TenantSpec,
};

use crate::{bench_meta, Scale};

/// One client-observed exchange: the request line sent, the parsed
/// response, and the observed round-trip in microseconds.
struct Exchange {
    line: String,
    response: Json,
    latency_us: u64,
}

struct ScenarioResult {
    name: &'static str,
    clients: usize,
    requests: usize,
    ok: usize,
    /// `ok` responses flagged `"partial": true` (in-solve cutoff fired).
    partial: usize,
    rejected: usize,
    deadline_exceeded: usize,
    errors: usize,
    parity_checked: usize,
    seconds: f64,
    qps: f64,
    service_p50_us: u64,
    service_p99_us: u64,
    rejection_p50_us: Option<u64>,
    rejection_p99_us: Option<u64>,
}

/// Exact percentile (nearest-rank) over client-observed samples.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

fn status_of(response: &Json) -> (&str, &str) {
    let status = response.get("status").and_then(Json::as_str).unwrap_or("missing");
    let code = response.get("error").and_then(Json::as_str).unwrap_or("");
    (status, code)
}

/// Run `clients` threads against `server`. Synchronous mode round-trips
/// one request at a time; pipelined mode sends a client's whole burst
/// up front and then correlates responses by id — that is what makes
/// rejection latency measurable while the queue is saturated.
fn drive(
    server: &ServerHandle,
    per_client: &[Vec<String>],
    pipelined: bool,
) -> (Vec<Exchange>, f64) {
    let start = Instant::now();
    let exchanges = std::thread::scope(|scope| {
        let handles: Vec<_> = per_client
            .iter()
            .map(|lines| {
                scope.spawn(move || {
                    let mut client = Client::connect(server.addr()).expect("connect");
                    let mut out: Vec<Exchange> = Vec::with_capacity(lines.len());
                    if pipelined {
                        let mut sent_at: HashMap<usize, (Instant, &str)> = HashMap::new();
                        for line in lines {
                            let wire = parse_request(line).expect("trace line parses");
                            let id = wire.id.as_ref().and_then(Json::as_usize).expect("trace id");
                            sent_at.insert(id, (Instant::now(), line));
                            client.send(line).expect("send");
                        }
                        for _ in 0..lines.len() {
                            let response = client.recv().expect("recv");
                            let id =
                                response.get("id").and_then(Json::as_usize).expect("echoed id");
                            let (at, line) = sent_at[&id];
                            out.push(Exchange {
                                line: line.to_string(),
                                response,
                                latency_us: at.elapsed().as_micros() as u64,
                            });
                        }
                    } else {
                        for line in lines {
                            let at = Instant::now();
                            let response = client.call(line).expect("call");
                            out.push(Exchange {
                                line: line.clone(),
                                response,
                                latency_us: at.elapsed().as_micros() as u64,
                            });
                        }
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect::<Vec<_>>()
    });
    (exchanges, start.elapsed().as_secs_f64())
}

/// Replay every `ok` response through an in-process [`Session`] built
/// from the same specs and the server's calibration; panic on any
/// divergence. Returns how many responses were checked. Partial answers
/// (`"partial": true` — an in-solve time cutoff fired) are skipped:
/// where a wall-clock cutoff lands is the one thing the determinism
/// contract does not cover.
fn assert_parity(server: &ServerHandle, specs: &[TenantSpec], exchanges: &[Exchange]) -> usize {
    let calibration = server.calibration();
    let sessions: HashMap<&str, Session> = specs
        .iter()
        .map(|s| {
            (
                s.name.as_str(),
                Session::new(s.source.load().expect("load")).exec(ExecPolicy::sequential()),
            )
        })
        .collect();
    let mut expected_cache: HashMap<String, rank_regret::Response> = HashMap::new();
    let mut checked = 0usize;
    for ex in exchanges {
        if status_of(&ex.response).0 != "ok" || ex.response.get("partial").is_some() {
            continue;
        }
        let wire = parse_request(&ex.line).expect("trace line parses");
        let tenant = wire.tenant.clone().expect("query has tenant");
        let session = &sessions[tenant.as_str()];
        // Cache by everything except the id — identical requests must
        // produce identical answers, so one replay covers the class.
        let key = format!(
            "{tenant}|{:?}|{:?}|{:?}|{:?}",
            wire.op, wire.algo, wire.deadline_ms, wire.samples
        );
        let expected = expected_cache.entry(key).or_insert_with(|| {
            let request =
                effective_request(&wire, calibration, session.data().n(), session.data().dim())
                    .expect("query op");
            session.run(&request).expect("replay succeeds")
        });
        let got_indices: Vec<usize> = match ex.response.get("indices") {
            Some(Json::Arr(items)) => items.iter().map(|v| v.as_usize().expect("index")).collect(),
            other => panic!("ok response without indices: {other:?}"),
        };
        let want_indices: Vec<usize> =
            expected.solution.indices.iter().map(|&i| i as usize).collect();
        assert_eq!(got_indices, want_indices, "served indices diverged on {}", ex.line);
        let got_cert = ex.response.get("certified_regret").and_then(Json::as_usize);
        assert_eq!(
            got_cert, expected.solution.certified_regret,
            "served certificate diverged on {}",
            ex.line
        );
        assert_eq!(
            ex.response.get("algorithm").and_then(Json::as_str),
            Some(expected.solution.algorithm.name()),
            "served algorithm diverged on {}",
            ex.line
        );
        checked += 1;
    }
    checked
}

fn summarize(
    name: &'static str,
    clients: usize,
    exchanges: &[Exchange],
    seconds: f64,
    parity_checked: usize,
) -> ScenarioResult {
    let mut service: Vec<u64> = Vec::new();
    let mut rejection: Vec<u64> = Vec::new();
    let (mut ok, mut partial, mut rejected, mut deadline_exceeded, mut errors) =
        (0usize, 0usize, 0usize, 0usize, 0usize);
    for ex in exchanges {
        match status_of(&ex.response) {
            ("ok", _) => {
                ok += 1;
                if ex.response.get("partial").is_some() {
                    partial += 1;
                }
                service.push(ex.latency_us);
            }
            (_, "overloaded") => {
                rejected += 1;
                rejection.push(ex.latency_us);
            }
            (_, "deadline_exceeded") => deadline_exceeded += 1,
            _ => errors += 1,
        }
    }
    service.sort_unstable();
    rejection.sort_unstable();
    assert!(ok > 0, "{name}: no request succeeded");
    ScenarioResult {
        name,
        clients,
        requests: exchanges.len(),
        ok,
        partial,
        rejected,
        deadline_exceeded,
        errors,
        parity_checked,
        seconds,
        qps: ok as f64 / seconds.max(1e-9),
        service_p50_us: percentile(&service, 50.0),
        service_p99_us: percentile(&service, 99.0),
        rejection_p50_us: (!rejection.is_empty()).then(|| percentile(&rejection, 50.0)),
        rejection_p99_us: (!rejection.is_empty()).then(|| percentile(&rejection, 99.0)),
    }
}

fn single_tenant_hot(scale: Scale) -> ScenarioResult {
    let specs =
        [TenantSpec::synthetic("hot", SyntheticKind::Independent, 2_000, 4, 101).max_inflight(32)];
    let config =
        ServerConfig { workers: 2, warm: vec![Algorithm::Hdrrm], ..ServerConfig::default() };
    let server = ServerHandle::start(config, &specs).expect("start server");
    let per_request = match scale {
        Scale::Quick => 10usize,
        Scale::Full => 50,
    };
    let clients = 4;
    let per_client: Vec<Vec<String>> = (0..clients)
        .map(|c| {
            (0..per_request)
                .map(|i| {
                    let param = 8 + (i % 3) * 2;
                    format!(
                        "{{\"op\":\"minimize\",\"tenant\":\"hot\",\"param\":{param},\
                         \"algo\":\"hdrrm\",\"samples\":150,\"id\":{}}}",
                        c * 100_000 + i
                    )
                })
                .collect()
        })
        .collect();
    let (exchanges, seconds) = drive(&server, &per_client, false);
    let parity = assert_parity(&server, &specs, &exchanges);
    let result = summarize("single_tenant_hot", clients, &exchanges, seconds, parity);
    server.shutdown();
    result
}

fn multi_tenant_mixed(scale: Scale) -> ScenarioResult {
    let specs = [
        TenantSpec::synthetic("hot", SyntheticKind::Independent, 2_000, 4, 101).max_inflight(16),
        TenantSpec::synthetic("corr", SyntheticKind::Correlated, 1_500, 3, 102).max_inflight(16),
        TenantSpec::synthetic("anti", SyntheticKind::Anticorrelated, 1_000, 4, 103)
            .max_inflight(16),
    ];
    let config = ServerConfig {
        workers: 2,
        warm: vec![Algorithm::Hdrrm, Algorithm::Mdrc, Algorithm::Mdrms],
        ..ServerConfig::default()
    };
    let server = ServerHandle::start(config, &specs).expect("start server");
    let per_request = match scale {
        Scale::Quick => 12usize,
        Scale::Full => 60,
    };
    let clients = 4;
    let tenants = ["hot", "corr", "anti"];
    let algos = ["hdrrm", "mdrc", "mdrms"];
    let per_client: Vec<Vec<String>> = (0..clients)
        .map(|c| {
            (0..per_request)
                .map(|i| {
                    let tenant = tenants[(c + i) % tenants.len()];
                    let param = 6 + (i % 4);
                    // Represent stays on HDRRM (binary search over r is
                    // budget-bounded); minimize rotates the HD roster.
                    let (op, algo) = if i % 3 == 2 {
                        ("represent", "hdrrm")
                    } else {
                        ("minimize", algos[i % algos.len()])
                    };
                    format!(
                        "{{\"op\":\"{op}\",\"tenant\":\"{tenant}\",\"param\":{param},\
                         \"algo\":\"{algo}\",\"samples\":150,\"deadline_ms\":5000,\"id\":{}}}",
                        c * 100_000 + i
                    )
                })
                .collect()
        })
        .collect();
    let (exchanges, seconds) = drive(&server, &per_client, false);
    let parity = assert_parity(&server, &specs, &exchanges);
    let result = summarize("multi_tenant_mixed", clients, &exchanges, seconds, parity);
    server.shutdown();
    result
}

fn overload(scale: Scale) -> ScenarioResult {
    let specs =
        [TenantSpec::synthetic("slow", SyntheticKind::Anticorrelated, 3_000, 4, 104)
            .max_inflight(4)];
    let config = ServerConfig {
        workers: 1,
        queue_cap: 8,
        warm: vec![Algorithm::Hdrrm],
        ..ServerConfig::default()
    };
    let server = ServerHandle::start(config, &specs).expect("start server");
    let burst = match scale {
        Scale::Quick => 6usize,
        Scale::Full => 10,
    };
    let clients = 6;
    let per_client: Vec<Vec<String>> = (0..clients)
        .map(|c| {
            (0..burst)
                .map(|i| {
                    format!(
                        "{{\"op\":\"minimize\",\"tenant\":\"slow\",\"param\":10,\
                         \"algo\":\"hdrrm\",\"samples\":400,\"id\":{}}}",
                        c * 100_000 + i
                    )
                })
                .collect()
        })
        .collect();
    let (exchanges, seconds) = drive(&server, &per_client, true);
    let parity = assert_parity(&server, &specs, &exchanges);
    let result = summarize("overload", clients, &exchanges, seconds, parity);
    // The admission-control acceptance criteria, asserted in-run: with 6
    // clients bursting at a 4-deep in-flight limit, rejections must
    // happen, and they must come back much faster than served queries.
    assert!(result.rejected > 0, "overload scenario produced no rejections");
    let rejection_p99 = result.rejection_p99_us.expect("rejections measured");
    assert!(
        rejection_p99 < result.service_p99_us,
        "rejections (p99 {}us) were not faster than service (p99 {}us)",
        rejection_p99,
        result.service_p99_us
    );
    server.shutdown();
    result
}

/// Entry point for `repro serve`.
pub fn run(scale: Scale) {
    let results = [single_tenant_hot(scale), multi_tenant_mixed(scale), overload(scale)];

    println!(
        "{:<20} {:>3} {:>5} {:>5} {:>5} {:>5} {:>9} {:>9} {:>9} {:>8}",
        "scenario", "cl", "req", "ok", "rej", "ddl", "p50(us)", "p99(us)", "rej99", "QPS"
    );
    for r in &results {
        println!(
            "{:<20} {:>3} {:>5} {:>5} {:>5} {:>5} {:>9} {:>9} {:>9} {:>8.1}",
            r.name,
            r.clients,
            r.requests,
            r.ok,
            r.rejected,
            r.deadline_exceeded,
            r.service_p50_us,
            r.service_p99_us,
            r.rejection_p99_us.map_or("-".to_string(), |v| v.to_string()),
            r.qps,
        );
        assert_eq!(
            r.parity_checked,
            r.ok - r.partial,
            "{}: every complete ok response must be parity-checked",
            r.name
        );
        assert_eq!(r.errors, 0, "{}: unexpected error responses", r.name);
    }

    // Hand-rolled JSON (no serde in the offline container).
    let mut json = format!("{{{},\"scenarios\":[\n", bench_meta("serve"));
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        let opt = |v: Option<u64>| v.map_or("null".to_string(), |x| x.to_string());
        json.push_str(&format!(
            "  {{\"name\":\"{}\",\"clients\":{},\"requests\":{},\"ok\":{},\
             \"partial\":{},\"rejected\":{},\"deadline_exceeded\":{},\"errors\":{},\
             \"parity_checked\":{},\"seconds\":{:.6},\"qps\":{:.1},\
             \"service_p50_us\":{},\"service_p99_us\":{},\
             \"rejection_p50_us\":{},\"rejection_p99_us\":{}}}{sep}\n",
            r.name,
            r.clients,
            r.requests,
            r.ok,
            r.partial,
            r.rejected,
            r.deadline_exceeded,
            r.errors,
            r.parity_checked,
            r.seconds,
            r.qps,
            r.service_p50_us,
            r.service_p99_us,
            opt(r.rejection_p50_us),
            opt(r.rejection_p99_us),
        ));
    }
    json.push_str("]}\n");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!(
        "wrote BENCH_serve.json (all served responses parity-checked against in-process sessions)"
    );
}
