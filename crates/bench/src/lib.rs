//! Shared infrastructure for the experiment harness.
//!
//! The `repro` binary (`cargo run --release -p bench --bin repro -- <id>`)
//! regenerates each table/figure of the paper; this library holds the
//! pieces shared between it and the Criterion benches: timed runs, the
//! algorithm roster — resolved through the [`Solver`] trait, so the
//! harness never calls algorithm crates directly — and sweep
//! configuration for quick vs full mode.

pub mod anytime_bench;
pub mod approx_bench;
pub mod incremental_bench;
pub mod serve_bench;

use std::time::Instant;

use rank_regret::{Engine, Tuning};
use rrm_core::{Budget, Dataset, PreparedSolver, Solver, UtilitySpace};
use rrm_hd::{HdrrmOptions, MdrmsOptions, MdrrrROptions};

/// One measured run of one algorithm.
#[derive(Debug, Clone)]
pub struct Outcome {
    pub algorithm: &'static str,
    /// Total wall-clock: `prepare_seconds + query_seconds`.
    pub seconds: f64,
    /// Time spent building dataset-bound state ([`Solver::prepare`]);
    /// zero on the one-shot path, where that work is folded into the
    /// query.
    pub prepare_seconds: f64,
    /// Time spent answering the query itself.
    pub query_seconds: f64,
    /// Measured rank-regret over the query space (sampled estimator).
    pub regret: usize,
    /// The solver's own certificate, when it provides one.
    pub certified: Option<usize>,
    pub size: usize,
}

/// Experiment scale: `quick` finishes a full `repro all` in minutes;
/// `full` mirrors the paper's parameters (hours at the top sizes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    Quick,
    Full,
}

impl Scale {
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--full") {
            Scale::Full
        } else {
            Scale::Quick
        }
    }

    /// Evaluation sample count (the paper uses 100 000).
    pub fn eval_samples(self) -> usize {
        match self {
            Scale::Quick => 20_000,
            Scale::Full => 100_000,
        }
    }

    /// HDRRM options: quick mode trades the δ guarantee down (fewer `Da`
    /// samples) to keep sweeps fast; full mode uses the paper's δ = 0.03.
    pub fn hdrrm(self) -> HdrrmOptions {
        match self {
            Scale::Quick => HdrrmOptions { delta: 0.1, ..Default::default() },
            Scale::Full => HdrrmOptions::default(),
        }
    }

    pub fn mdrrr_r(self) -> MdrrrROptions {
        match self {
            Scale::Quick => MdrrrROptions { samples: 5_000, ..Default::default() },
            Scale::Full => MdrrrROptions { samples: 50_000, ..Default::default() },
        }
    }

    pub fn mdrms(self) -> MdrmsOptions {
        match self {
            Scale::Quick => MdrmsOptions { samples: 1_000, ..Default::default() },
            Scale::Full => MdrmsOptions { samples: 5_000, ..Default::default() },
        }
    }

    /// The scale-tuned [`Engine`] — the harness resolves every algorithm
    /// through its registry, so solver construction/dispatch stays defined
    /// in one place (`Engine::with_tuning`).
    pub fn engine(self) -> Engine {
        Engine::with_tuning(&Tuning {
            hdrrm: self.hdrrm(),
            mdrrr_r: self.mdrrr_r(),
            mdrms: self.mdrms(),
            ..Default::default()
        })
    }
}

/// Time a closure.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let v = f();
    (v, start.elapsed().as_secs_f64())
}

/// The uniform header every `BENCH_*.json` starts with: schema version,
/// experiment id, and machine metadata (core count, target arch, and the
/// `target-cpu` the binary was compiled for, best-effort from `RUSTFLAGS`).
/// Returned as a brace-less fragment so writers embed it as the first
/// fields of their top-level object.
pub fn bench_meta(experiment: &str) -> String {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let target_cpu = std::env::var("RUSTFLAGS")
        .ok()
        .and_then(|flags| {
            flags
                .split("target-cpu=")
                .nth(1)
                .and_then(|rest| rest.split_whitespace().next().map(str::to_string))
        })
        .unwrap_or_else(|| "generic".to_string());
    format!(
        "\"schema_version\":1,\"experiment\":\"{experiment}\",\
         \"machine\":{{\"cores\":{cores},\"target_arch\":\"{}\",\"target_cpu\":\"{}\"}}",
        std::env::consts::ARCH,
        target_cpu,
    )
}

/// Run one RRM query through the [`Solver`] trait and measure its output
/// quality over `space`. Thin harness adapter over
/// [`rrm_eval::evaluate_rrm`] — the measurement logic lives there, this
/// just maps it onto [`Outcome`] and panics on solver errors (a failing
/// roster entry should abort the experiment loudly).
pub fn measure_solver(
    solver: &dyn Solver,
    data: &Dataset,
    r: usize,
    space: &dyn UtilitySpace,
    eval_samples: usize,
) -> Outcome {
    let report =
        rrm_eval::evaluate_rrm(solver, data, r, space, &Budget::UNLIMITED, eval_samples, 0xE7A1)
            .unwrap_or_else(|e| panic!("{}: {e}", solver.name()));
    Outcome {
        algorithm: solver.name(),
        seconds: report.seconds,
        prepare_seconds: 0.0,
        query_seconds: report.seconds,
        regret: report.estimated_regret,
        certified: report.certified_regret,
        size: report.size,
    }
}

/// Run one RRM query through an already-prepared handle and measure it.
/// `prepare_seconds` is the (amortized) preparation time the caller
/// measured — it is recorded in the outcome but `query_seconds` is what
/// this query actually cost.
pub fn measure_prepared(
    prepared: &dyn PreparedSolver,
    r: usize,
    space: &dyn UtilitySpace,
    budget: &Budget,
    eval_samples: usize,
    prepare_seconds: f64,
) -> Outcome {
    let report = rrm_eval::evaluate_rrm_prepared(prepared, r, space, budget, eval_samples, 0xE7A1)
        .unwrap_or_else(|e| panic!("{}: {e}", prepared.name()));
    Outcome {
        algorithm: prepared.name(),
        seconds: prepare_seconds + report.seconds,
        prepare_seconds,
        query_seconds: report.seconds,
        regret: report.estimated_regret,
        certified: report.certified_regret,
        size: report.size,
    }
}

/// A seeded synthetic generator `(n, d, seed) -> Dataset`.
pub type Generator = fn(usize, usize, u64) -> Dataset;

/// The synthetic distributions of the paper's figures, in their order.
pub const SYNTHETICS: [(&str, Generator); 3] = [
    ("independent", rrm_data::synthetic::independent),
    ("correlated", rrm_data::synthetic::correlated),
    ("anti-correlated", rrm_data::synthetic::anticorrelated),
];

#[cfg(test)]
mod tests {
    use super::*;
    use rrm_core::FullSpace;

    #[test]
    fn timed_returns_value_and_duration() {
        let (v, s) = timed(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(s >= 0.0);
    }

    #[test]
    fn measure_solver_goes_through_the_trait() {
        let data = rrm_data::synthetic::independent(100, 2, 0);
        let engine = Scale::Quick.engine();
        let solver = engine.solver(rrm_core::Algorithm::TwoDRrm).unwrap();
        let out = measure_solver(solver, &data, 3, &FullSpace::new(2), 500);
        assert_eq!(out.algorithm, "2DRRM");
        assert!(out.size <= 3);
        assert!(out.certified.is_some());
        assert!(out.regret >= 1);
        // One-shot: all time is query time.
        assert_eq!(out.prepare_seconds, 0.0);
        assert_eq!(out.seconds, out.query_seconds);
    }

    #[test]
    fn measure_prepared_splits_the_timing() {
        let data = rrm_data::synthetic::independent(100, 2, 0);
        let engine = Scale::Quick.engine();
        let solver = engine.solver(rrm_core::Algorithm::TwoDRrm).unwrap();
        let (prepared, prep_secs) =
            timed(|| solver.prepare(&data, &FullSpace::new(2)).expect("preparable"));
        let out = measure_prepared(
            prepared.as_ref(),
            3,
            &FullSpace::new(2),
            &Budget::UNLIMITED,
            500,
            prep_secs,
        );
        assert_eq!(out.algorithm, "2DRRM");
        assert_eq!(out.prepare_seconds, prep_secs);
        assert!((out.seconds - (out.prepare_seconds + out.query_seconds)).abs() < 1e-12);
        // Same answer as the one-shot path.
        let one_shot = measure_solver(solver, &data, 3, &FullSpace::new(2), 500);
        assert_eq!(out.size, one_shot.size);
        assert_eq!(out.certified, one_shot.certified);
        assert_eq!(out.regret, one_shot.regret);
    }

    #[test]
    fn scale_engine_resolves_every_algorithm() {
        let engine = Scale::Quick.engine();
        for algo in rrm_core::Algorithm::ALL {
            let solver = engine.solver(algo).unwrap_or_else(|| panic!("{algo} missing"));
            assert_eq!(solver.algorithm(), algo);
        }
    }

    #[test]
    fn bench_meta_is_a_valid_json_fragment() {
        let meta = bench_meta("serve");
        assert!(meta.starts_with("\"schema_version\":1,"), "{meta}");
        assert!(meta.contains("\"experiment\":\"serve\""), "{meta}");
        assert!(meta.contains("\"cores\":"), "{meta}");
        assert!(meta.contains("\"target_cpu\":"), "{meta}");
        // Embeds into an object without breaking JSON syntax.
        let doc = format!("{{{meta},\"entries\":[]}}");
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }

    #[test]
    fn scale_parameters() {
        assert!(Scale::Quick.eval_samples() < Scale::Full.eval_samples());
        assert!(Scale::Quick.hdrrm().delta > Scale::Full.hdrrm().delta);
        assert!(Scale::Quick.mdrrr_r().samples < Scale::Full.mdrrr_r().samples);
    }
}
