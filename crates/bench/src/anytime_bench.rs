//! `repro anytime`: measures the anytime bound-and-prune machinery of
//! the hard HD solvers and writes `BENCH_anytime.json`.
//!
//! Three questions, answered per instance (HDRRM and MDRRRr on the
//! synthetic hard cases):
//!
//! * **Time to first incumbent** — how long until a cut-off would have
//!   *something* sound to return, vs. the full-solve wall time. The
//!   coarse-frame incumbent pass makes this a small fraction of the
//!   first real probe.
//! * **Pruning win** — search nodes (greedy cover selections + probes)
//!   expanded with bound-and-prune on vs. off, in the same run, with the
//!   answers asserted bit-identical (pruning is decision-equivalent).
//! * **Gap vs. budget** — a deterministic [`Cutoff::CounterBudget`]
//!   sweep: the certified optimality gap as a function of the probe
//!   budget, down to gap 0 at the full-solve answer.
//!
//! The acceptance gate asserted in-run: on at least one instance the
//! first incumbent lands within 10% of the full-solve wall time AND
//! pruning skips at least 20% of the no-pruning baseline's nodes.
//!
//! [`Cutoff::CounterBudget`]: rrm_core::Cutoff::CounterBudget

use rrm_core::{Budget, Dataset, FullSpace, Solution, Solver, SolverCtx, TerminatedBy};
use rrm_hd::{HdrrmOptions, HdrrmSolver, MdrrrROptions, MdrrrRSolver};

use crate::{bench_meta, timed, Scale};

#[derive(Clone, Copy)]
enum Algo {
    Hdrrm,
    MdrrrR,
}

impl Algo {
    fn name(self) -> &'static str {
        match self {
            Algo::Hdrrm => "HDRRM",
            Algo::MdrrrR => "MDRRRr",
        }
    }
}

/// One point of the deterministic counter-budget sweep.
struct SweepPoint {
    budget: usize,
    seconds: f64,
    gap: Option<f64>,
    lower: Option<usize>,
    upper: Option<usize>,
    terminated_by: &'static str,
}

struct InstanceResult {
    dataset: &'static str,
    algorithm: &'static str,
    n: usize,
    d: usize,
    r: usize,
    full_seconds: f64,
    first_incumbent_seconds: f64,
    first_incumbent_fraction: f64,
    nodes: u64,
    pruned_probes: u64,
    nodes_noprune: u64,
    pruned_fraction: f64,
    /// `(seconds, lower, upper)` at each bounds improvement of the full
    /// (pruned, uncut) run.
    curve: Vec<(f64, usize, usize)>,
    sweep: Vec<SweepPoint>,
}

/// One solve through the [`Solver`] trait with the scale's tuned options
/// and an explicit prune switch.
fn solve(
    algo: Algo,
    scale: Scale,
    prune: bool,
    data: &Dataset,
    r: usize,
    budget: &Budget,
) -> Solution {
    let space = FullSpace::new(data.dim());
    match algo {
        Algo::Hdrrm => HdrrmSolver::new(HdrrmOptions { prune, ..scale.hdrrm() })
            .solve_rrm_ctx(data, r, &space, budget, &SolverCtx::default())
            .expect("HDRRM solves the synthetic instances"),
        Algo::MdrrrR => MdrrrRSolver::new(MdrrrROptions { prune, ..scale.mdrrr_r() })
            .solve_rrm_ctx(data, r, &space, budget, &SolverCtx::default())
            .expect("MDRRRr solves the synthetic instances"),
    }
}

fn measure(
    dataset: &'static str,
    algo: Algo,
    scale: Scale,
    data: &Dataset,
    r: usize,
) -> InstanceResult {
    // Full solve, pruning on: the wall-time / first-incumbent baseline.
    let (sol, full_seconds) = timed(|| solve(algo, scale, true, data, r, &Budget::UNLIMITED));
    assert_eq!(sol.terminated_by, TerminatedBy::Completed, "uncut solve must complete");
    let report = sol.report.clone().expect("anytime solvers attach a search report");

    // Same solve, pruning off: the no-pruning node-count baseline. The
    // answer must not move — pruning is decision-equivalent by
    // construction, and this assertion keeps it honest.
    let (sol_off, _) = timed(|| solve(algo, scale, false, data, r, &Budget::UNLIMITED));
    assert_eq!(sol, sol_off, "{dataset}/{}: pruning changed the answer", algo.name());
    let report_off = sol_off.report.clone().expect("report");

    let first_incumbent_seconds =
        report.first_incumbent_seconds.expect("coarse pass stamps a first incumbent");
    let nodes_noprune = report_off.nodes;
    assert!(
        report.nodes <= nodes_noprune,
        "{dataset}/{}: pruning expanded more nodes ({} > {nodes_noprune})",
        algo.name(),
        report.nodes
    );
    let pruned_fraction = if nodes_noprune == 0 {
        0.0
    } else {
        (nodes_noprune - report.nodes) as f64 / nodes_noprune as f64
    };

    // Deterministic gap-vs-budget sweep: doubling counter budgets until
    // the search completes (gap 0, bit-identical to the uncut answer).
    let mut sweep: Vec<SweepPoint> = Vec::new();
    let mut budget = 1usize;
    loop {
        let b = Budget {
            max_enumerations: Some(budget),
            max_lp_calls: Some(budget),
            ..Budget::UNLIMITED
        };
        let (cut, seconds) = timed(|| solve(algo, scale, true, data, r, &b));
        let done = cut.terminated_by == TerminatedBy::Completed;
        if done {
            assert_eq!(
                cut.indices,
                sol.indices,
                "{dataset}/{}: completed budgeted answer diverged",
                algo.name()
            );
        }
        sweep.push(SweepPoint {
            budget,
            seconds,
            gap: cut.gap(),
            lower: cut.bounds.map(|b| b.lower),
            upper: cut.bounds.map(|b| b.upper),
            terminated_by: cut.terminated_by.name(),
        });
        if done || budget >= 1 << 14 {
            break;
        }
        budget *= 2;
    }

    InstanceResult {
        dataset,
        algorithm: algo.name(),
        n: data.n(),
        d: data.dim(),
        r,
        full_seconds,
        first_incumbent_seconds,
        first_incumbent_fraction: first_incumbent_seconds / full_seconds.max(1e-9),
        nodes: report.nodes,
        pruned_probes: report.pruned_probes,
        nodes_noprune,
        pruned_fraction,
        curve: report.curve.iter().map(|&(s, b)| (s, b.lower, b.upper)).collect(),
        sweep,
    }
}

/// Entry point for `repro anytime`.
pub fn run(scale: Scale) {
    let n = match scale {
        Scale::Quick => 5_000,
        Scale::Full => 10_000,
    };
    let r = 10;
    let anti = rrm_data::synthetic::anticorrelated(n, 4, 61);
    let indep = rrm_data::synthetic::independent(n, 4, 62);

    let results = [
        measure("anti-correlated", Algo::Hdrrm, scale, &anti, r),
        measure("anti-correlated", Algo::MdrrrR, scale, &anti, r),
        measure("independent", Algo::Hdrrm, scale, &indep, r),
    ];

    println!(
        "{:<16} {:<7} {:>8} {:>9} {:>7} {:>9} {:>10} {:>8} {:>7}",
        "dataset",
        "algo",
        "full(s)",
        "first(s)",
        "first%",
        "nodes",
        "no-prune",
        "pruned%",
        "probes"
    );
    let mut any_pass = false;
    for res in &results {
        let incumbent_ok = res.first_incumbent_fraction <= 0.10;
        let pruning_ok = res.pruned_fraction >= 0.20;
        any_pass |= incumbent_ok && pruning_ok;
        println!(
            "{:<16} {:<7} {:>8.3} {:>9.4} {:>6.1}% {:>9} {:>10} {:>7.1}% {:>7}",
            res.dataset,
            res.algorithm,
            res.full_seconds,
            res.first_incumbent_seconds,
            100.0 * res.first_incumbent_fraction,
            res.nodes,
            res.nodes_noprune,
            100.0 * res.pruned_fraction,
            res.pruned_probes,
        );
        let gaps: Vec<String> = res
            .sweep
            .iter()
            .map(|p| {
                format!("{}:{}", p.budget, p.gap.map_or("-".to_string(), |g| format!("{g:.2}")))
            })
            .collect();
        println!("  gap vs budget: {}", gaps.join(" "));
    }
    assert!(
        any_pass,
        "no instance met the anytime acceptance gate \
         (first incumbent <= 10% of full wall AND >= 20% nodes pruned)"
    );

    // Hand-rolled JSON (no serde in the offline container).
    let opt_u = |v: Option<usize>| v.map_or("null".to_string(), |x| x.to_string());
    let opt_f = |v: Option<f64>| v.map_or("null".to_string(), |x| format!("{x:.6}"));
    let mut json = format!("{{{},\"instances\":[\n", bench_meta("anytime"));
    for (i, res) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        let curve: Vec<String> = res
            .curve
            .iter()
            .map(|&(s, lo, up)| format!("{{\"seconds\":{s:.6},\"lower\":{lo},\"upper\":{up}}}"))
            .collect();
        let sweep: Vec<String> = res
            .sweep
            .iter()
            .map(|p| {
                format!(
                    "{{\"budget\":{},\"seconds\":{:.6},\"gap\":{},\"lower\":{},\
                     \"upper\":{},\"terminated_by\":\"{}\"}}",
                    p.budget,
                    p.seconds,
                    opt_f(p.gap),
                    opt_u(p.lower),
                    opt_u(p.upper),
                    p.terminated_by,
                )
            })
            .collect();
        json.push_str(&format!(
            "  {{\"dataset\":\"{}\",\"algorithm\":\"{}\",\"n\":{},\"d\":{},\"r\":{},\
             \"full_seconds\":{:.6},\"first_incumbent_seconds\":{:.6},\
             \"first_incumbent_fraction\":{:.4},\"nodes\":{},\"pruned_probes\":{},\
             \"nodes_noprune\":{},\"pruned_fraction\":{:.4},\
             \"curve\":[{}],\"gap_vs_budget\":[{}]}}{sep}\n",
            res.dataset,
            res.algorithm,
            res.n,
            res.d,
            res.r,
            res.full_seconds,
            res.first_incumbent_seconds,
            res.first_incumbent_fraction,
            res.nodes,
            res.pruned_probes,
            res.nodes_noprune,
            res.pruned_fraction,
            curve.join(","),
            sweep.join(","),
        ));
    }
    json.push_str("]}\n");
    std::fs::write("BENCH_anytime.json", &json).expect("write BENCH_anytime.json");
    println!("wrote BENCH_anytime.json (pruned-vs-unpruned answers asserted bit-identical in-run)");
}
