//! `repro incremental`: measures [`Session::update`] against naive
//! re-prepare under sustained churn and writes `BENCH_incremental.json`.
//!
//! The workload the epoch machinery exists for: one long-lived session, a
//! concurrent query stream, and a steady drip of 1% churn batches (n/200
//! deletes + n/200 inserts, n constant). Per batch, two paths answer the
//! same post-update queries, with maintenance and query costs timed in
//! *separate* regions so the shared query cannot pollute the maintenance
//! comparison:
//!
//! * **incremental** — `session.update(&ops)` advances the warm prepared
//!   handles in place (skyline merge, local event repair, top-k patching)
//!   and publishes a new epoch. The update is timed alone
//!   (`update_seconds`); the post-update query is timed alone right after
//!   (`query_seconds`), so lazily-deferred maintenance cannot hide — it
//!   lands in the query region and is reported, just not misattributed.
//! * **naive** — a fresh `Session` over the post-update rows: prepare
//!   from scratch timed alone (`prepare_seconds`), then its first query
//!   timed alone (`query_seconds`).
//!
//! The updates/sec rates and the speedup gate compare maintenance only:
//! update-only vs. fresh-prepare-only.
//!
//! After every batch, outside all timed regions, the two sessions'
//! answers are asserted bit-identical — the incremental path is only
//! allowed to be faster, never different. A concurrent reader thread
//! queries the incremental session the whole time (updates never block
//! readers; its completed-query count is reported).
//!
//! The acceptance gate asserted in-run: at n = 100K with 1% churn, at
//! least one algorithm sustains >= 10x the naive path's updates/sec.
//!
//! [`Session::update`]: rank_regret::Session::update

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rank_regret::{apply_updates, Engine, Request, Session, Tuning, UpdateOp};
use rrm_core::{Algorithm, Budget, Dataset, ExecPolicy};
use rrm_hd::HdrrmOptions;

use crate::{bench_meta, timed, Scale};

struct ChurnResult {
    algorithm: &'static str,
    n: usize,
    d: usize,
    batches: usize,
    ops_per_batch: usize,
    /// `session.update(&ops)` alone — the maintenance cost under test.
    incremental_update_seconds: f64,
    /// The post-update query on the warm session, timed separately so
    /// lazily-deferred maintenance shows up here instead of hiding.
    incremental_query_seconds: f64,
    /// Fresh-session prepare alone — the maintenance cost it replaces.
    naive_prepare_seconds: f64,
    /// The fresh session's first query, timed separately (symmetric with
    /// the incremental side).
    naive_query_seconds: f64,
    incremental_updates_per_sec: f64,
    naive_updates_per_sec: f64,
    /// Maintenance-only speedup: update-only vs. fresh-prepare-only.
    speedup: f64,
    concurrent_queries: usize,
}

/// One churn batch against pre-batch size `n`: `half` distinct random
/// deletes plus `half` random inserts, deterministic in `seed`.
fn churn_ops(n: usize, d: usize, half: usize, seed: u64) -> Vec<UpdateOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut picked: HashSet<usize> = HashSet::with_capacity(half);
    while picked.len() < half {
        picked.insert(rng.random_range(0..n));
    }
    let mut deletes: Vec<usize> = picked.into_iter().collect();
    deletes.sort_unstable();
    let mut ops: Vec<UpdateOp> = deletes.into_iter().map(UpdateOp::Delete).collect();
    for _ in 0..half {
        ops.push(UpdateOp::Insert((0..d).map(|_| rng.random::<f64>()).collect()));
    }
    ops
}

/// Run `batches` churn batches through one warm session (incremental
/// path) and through per-batch fresh sessions (naive path), with a
/// concurrent query stream on the incremental side, asserting answer
/// parity after every batch.
fn churn(
    algorithm: Algorithm,
    tuning: &Tuning,
    data: Dataset,
    r: usize,
    budget: &Budget,
    batches: usize,
    seed: u64,
) -> ChurnResult {
    let n = data.n();
    let d = data.dim();
    let half = n / 200;
    let request = Request::minimize(r).algo(algorithm).budget(budget.clone());

    let session = Session::with_engine(Engine::with_tuning(tuning), data.clone());
    session.run(&request).expect("warm query"); // prepare once, untimed

    let stop = AtomicBool::new(false);
    let served = AtomicUsize::new(0);
    let mut incremental_update_seconds = 0.0;
    let mut incremental_query_seconds = 0.0;
    let mut naive_prepare_seconds = 0.0;
    let mut naive_query_seconds = 0.0;
    std::thread::scope(|scope| {
        scope.spawn(|| {
            // The concurrent reader: pins whatever epoch is current per
            // query, never blocks an update, never torn.
            while !stop.load(Ordering::Relaxed) {
                session.run(&request).expect("concurrent query");
                served.fetch_add(1, Ordering::Relaxed);
            }
        });
        let mut rows = data;
        for b in 0..batches {
            let ops = churn_ops(rows.n(), d, half, seed.wrapping_add(b as u64));

            // Incremental: the update alone is the maintenance cost under
            // test; the post-update query is timed in its own region so
            // lazily-deferred maintenance is visible without being
            // charged to the update.
            let (_, s) = timed(|| session.update(&ops).expect("incremental update"));
            incremental_update_seconds += s;
            let (inc_response, s) = timed(|| session.run(&request).expect("post-update query"));
            incremental_query_seconds += s;

            // Naive: a fresh session over the same post-update rows —
            // prepare from scratch alone, then its first query alone.
            rows = apply_updates(&rows, &ops).expect("churn batch applies").new;
            let fresh = Session::with_engine(Engine::with_tuning(tuning), rows.clone());
            let (_, s) = timed(|| {
                fresh.prepared(rank_regret::AlgoChoice::Fixed(algorithm)).expect("fresh prepare")
            });
            naive_prepare_seconds += s;
            let (fresh_response, s) = timed(|| fresh.run(&request).expect("fresh query"));
            naive_query_seconds += s;

            // Parity gate, outside both timed regions: same rows, same
            // answer, bit for bit.
            assert_eq!(*session.data(), rows, "{algorithm}: incremental rows diverged");
            assert_eq!(
                inc_response.solution, fresh_response.solution,
                "{algorithm}: batch {b} incremental answer diverged from fresh re-prepare"
            );
        }
        assert_eq!(session.epoch(), batches as u64, "one epoch per batch");
        stop.store(true, Ordering::Relaxed);
    });

    let ops_per_batch = 2 * half;
    let total_ops = (batches * ops_per_batch) as f64;
    // Maintenance-only rates: the shared query cost sits in its own
    // fields and pollutes neither side of the comparison.
    let incremental_updates_per_sec = total_ops / incremental_update_seconds.max(1e-9);
    let naive_updates_per_sec = total_ops / naive_prepare_seconds.max(1e-9);
    ChurnResult {
        algorithm: algorithm.name(),
        n,
        d,
        batches,
        ops_per_batch,
        incremental_update_seconds,
        incremental_query_seconds,
        naive_prepare_seconds,
        naive_query_seconds,
        incremental_updates_per_sec,
        naive_updates_per_sec,
        speedup: incremental_updates_per_sec / naive_updates_per_sec.max(1e-9),
        concurrent_queries: served.load(Ordering::Relaxed),
    }
}

/// Entry point for `repro incremental`.
pub fn run(scale: Scale) {
    // Pin the HDRRM direction count so the naive re-prepare cost is the
    // same known quantity at both scales (the paper's δ-derived m at
    // n = 100K is ~38K directions — hours of naive re-prepare per batch).
    let (m, batches_small, batches_large) = match scale {
        Scale::Quick => (512usize, 4usize, 2usize),
        Scale::Full => (2_048, 5, 5),
    };
    let tuning = Tuning {
        hdrrm: HdrrmOptions { m_override: Some(m), ..scale.hdrrm() },
        exec: ExecPolicy::sequential(),
        ..Default::default()
    };
    let r = 8;

    let mut results: Vec<ChurnResult> = Vec::new();
    for &n in &[10_000usize, 100_000] {
        let batches = if n >= 100_000 { batches_large } else { batches_small };
        results.push(churn(
            Algorithm::TwoDRrm,
            &tuning,
            rrm_data::synthetic::independent(n, 2, 93),
            r,
            &Budget::UNLIMITED,
            batches,
            1_000 + n as u64,
        ));
        results.push(churn(
            Algorithm::Hdrrm,
            &tuning,
            rrm_data::synthetic::independent(n, 4, 94),
            r,
            &Budget::with_samples(256),
            batches,
            2_000 + n as u64,
        ));
    }

    println!(
        "1% churn batches (n/200 deletes + n/200 inserts), parity-checked per batch; \
         update/prepare timed apart from the shared query"
    );
    println!(
        "{:<9} {:>7} {:>2} {:>3} {:>6} {:>10} {:>10} {:>10} {:>10} {:>11} {:>11} {:>8} {:>7}",
        "algo",
        "n",
        "d",
        "B",
        "ops/B",
        "upd (s)",
        "q-inc (s)",
        "prep (s)",
        "q-naive(s)",
        "inc up/s",
        "naive up/s",
        "speedup",
        "queries"
    );
    for res in &results {
        println!(
            "{:<9} {:>7} {:>2} {:>3} {:>6} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>11.0} {:>11.0} \
             {:>7.1}x {:>7}",
            res.algorithm,
            res.n,
            res.d,
            res.batches,
            res.ops_per_batch,
            res.incremental_update_seconds,
            res.incremental_query_seconds,
            res.naive_prepare_seconds,
            res.naive_query_seconds,
            res.incremental_updates_per_sec,
            res.naive_updates_per_sec,
            res.speedup,
            res.concurrent_queries,
        );
    }
    let best_at_100k =
        results.iter().filter(|r| r.n == 100_000).map(|r| r.speedup).fold(0.0f64, f64::max);
    assert!(
        best_at_100k >= 10.0,
        "acceptance gate: no algorithm sustained >= 10x naive re-prepare at n = 100K \
         (best {best_at_100k:.1}x)"
    );

    // Hand-rolled JSON (no serde in the offline container).
    let mut json =
        format!("{{{},\"churn_fraction\":0.01,\"entries\":[\n", bench_meta("incremental"));
    for (i, e) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        json.push_str(&format!(
            "  {{\"algorithm\":\"{}\",\"n\":{},\"d\":{},\"batches\":{},\"ops_per_batch\":{},\
             \"incremental_update_seconds\":{:.6},\"incremental_query_seconds\":{:.6},\
             \"naive_prepare_seconds\":{:.6},\"naive_query_seconds\":{:.6},\
             \"incremental_updates_per_sec\":{:.1},\"naive_updates_per_sec\":{:.1},\
             \"speedup\":{:.2},\"concurrent_queries\":{}}}{sep}\n",
            e.algorithm,
            e.n,
            e.d,
            e.batches,
            e.ops_per_batch,
            e.incremental_update_seconds,
            e.incremental_query_seconds,
            e.naive_prepare_seconds,
            e.naive_query_seconds,
            e.incremental_updates_per_sec,
            e.naive_updates_per_sec,
            e.speedup,
            e.concurrent_queries,
        ));
    }
    json.push_str("]}\n");
    std::fs::write("BENCH_incremental.json", &json).expect("write BENCH_incremental.json");
    println!(
        "wrote BENCH_incremental.json (incremental-vs-fresh answers asserted bit-identical in-run)"
    );
}
