//! `repro incremental`: measures [`Session::update`] against naive
//! re-prepare under sustained churn and writes `BENCH_incremental.json`.
//!
//! The workload the epoch machinery exists for: one long-lived session, a
//! concurrent query stream, and a steady drip of 1% churn batches (n/200
//! deletes + n/200 inserts, n constant). Per batch, two paths answer the
//! same post-update queries:
//!
//! * **incremental** — `session.update(&ops)` advances the warm prepared
//!   handles in place (skyline merge, local event repair, top-k patching)
//!   and publishes a new epoch; timed together with one post-update query
//!   so lazily-deferred work cannot hide.
//! * **naive** — a fresh `Session` over the post-update rows, timed
//!   through its first query (prepare from scratch).
//!
//! After every batch, outside both timed regions, the two sessions'
//! answers are asserted bit-identical — the incremental path is only
//! allowed to be faster, never different. A concurrent reader thread
//! queries the incremental session the whole time (updates never block
//! readers; its completed-query count is reported).
//!
//! The acceptance gate asserted in-run: at n = 100K with 1% churn, at
//! least one algorithm sustains >= 10x the naive path's updates/sec.
//!
//! [`Session::update`]: rank_regret::Session::update

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rank_regret::{apply_updates, Engine, Request, Session, Tuning, UpdateOp};
use rrm_core::{Algorithm, Budget, Dataset, ExecPolicy};
use rrm_hd::HdrrmOptions;

use crate::{bench_meta, timed, Scale};

struct ChurnResult {
    algorithm: &'static str,
    n: usize,
    d: usize,
    batches: usize,
    ops_per_batch: usize,
    incremental_seconds: f64,
    naive_seconds: f64,
    incremental_updates_per_sec: f64,
    naive_updates_per_sec: f64,
    speedup: f64,
    concurrent_queries: usize,
}

/// One churn batch against pre-batch size `n`: `half` distinct random
/// deletes plus `half` random inserts, deterministic in `seed`.
fn churn_ops(n: usize, d: usize, half: usize, seed: u64) -> Vec<UpdateOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut picked: HashSet<usize> = HashSet::with_capacity(half);
    while picked.len() < half {
        picked.insert(rng.random_range(0..n));
    }
    let mut deletes: Vec<usize> = picked.into_iter().collect();
    deletes.sort_unstable();
    let mut ops: Vec<UpdateOp> = deletes.into_iter().map(UpdateOp::Delete).collect();
    for _ in 0..half {
        ops.push(UpdateOp::Insert((0..d).map(|_| rng.random::<f64>()).collect()));
    }
    ops
}

/// Run `batches` churn batches through one warm session (incremental
/// path) and through per-batch fresh sessions (naive path), with a
/// concurrent query stream on the incremental side, asserting answer
/// parity after every batch.
fn churn(
    algorithm: Algorithm,
    tuning: &Tuning,
    data: Dataset,
    r: usize,
    budget: &Budget,
    batches: usize,
    seed: u64,
) -> ChurnResult {
    let n = data.n();
    let d = data.dim();
    let half = n / 200;
    let request = Request::minimize(r).algo(algorithm).budget(budget.clone());

    let session = Session::with_engine(Engine::with_tuning(tuning), data.clone());
    session.run(&request).expect("warm query"); // prepare once, untimed

    let stop = AtomicBool::new(false);
    let served = AtomicUsize::new(0);
    let mut incremental_seconds = 0.0;
    let mut naive_seconds = 0.0;
    std::thread::scope(|scope| {
        scope.spawn(|| {
            // The concurrent reader: pins whatever epoch is current per
            // query, never blocks an update, never torn.
            while !stop.load(Ordering::Relaxed) {
                session.run(&request).expect("concurrent query");
                served.fetch_add(1, Ordering::Relaxed);
            }
        });
        let mut rows = data;
        for b in 0..batches {
            let ops = churn_ops(rows.n(), d, half, seed.wrapping_add(b as u64));

            // Incremental: advance the warm session and answer one query.
            let (inc_response, s) = timed(|| {
                session.update(&ops).expect("incremental update");
                session.run(&request).expect("post-update query")
            });
            incremental_seconds += s;

            // Naive: prepare a fresh session over the same post-update
            // rows from scratch, through its first answer.
            rows = apply_updates(&rows, &ops).expect("churn batch applies").new;
            let (fresh_response, s) = timed(|| {
                let fresh = Session::with_engine(Engine::with_tuning(tuning), rows.clone());
                fresh.run(&request).expect("fresh query")
            });
            naive_seconds += s;

            // Parity gate, outside both timed regions: same rows, same
            // answer, bit for bit.
            assert_eq!(*session.data(), rows, "{algorithm}: incremental rows diverged");
            assert_eq!(
                inc_response.solution, fresh_response.solution,
                "{algorithm}: batch {b} incremental answer diverged from fresh re-prepare"
            );
        }
        assert_eq!(session.epoch(), batches as u64, "one epoch per batch");
        stop.store(true, Ordering::Relaxed);
    });

    let ops_per_batch = 2 * half;
    let total_ops = (batches * ops_per_batch) as f64;
    let incremental_updates_per_sec = total_ops / incremental_seconds.max(1e-9);
    let naive_updates_per_sec = total_ops / naive_seconds.max(1e-9);
    ChurnResult {
        algorithm: algorithm.name(),
        n,
        d,
        batches,
        ops_per_batch,
        incremental_seconds,
        naive_seconds,
        incremental_updates_per_sec,
        naive_updates_per_sec,
        speedup: incremental_updates_per_sec / naive_updates_per_sec.max(1e-9),
        concurrent_queries: served.load(Ordering::Relaxed),
    }
}

/// Entry point for `repro incremental`.
pub fn run(scale: Scale) {
    // Pin the HDRRM direction count so the naive re-prepare cost is the
    // same known quantity at both scales (the paper's δ-derived m at
    // n = 100K is ~38K directions — hours of naive re-prepare per batch).
    let (m, batches_small, batches_large) = match scale {
        Scale::Quick => (512usize, 4usize, 2usize),
        Scale::Full => (2_048, 5, 5),
    };
    let tuning = Tuning {
        hdrrm: HdrrmOptions { m_override: Some(m), ..scale.hdrrm() },
        exec: ExecPolicy::sequential(),
        ..Default::default()
    };
    let r = 8;

    let mut results: Vec<ChurnResult> = Vec::new();
    for &n in &[10_000usize, 100_000] {
        let batches = if n >= 100_000 { batches_large } else { batches_small };
        results.push(churn(
            Algorithm::TwoDRrm,
            &tuning,
            rrm_data::synthetic::independent(n, 2, 93),
            r,
            &Budget::UNLIMITED,
            batches,
            1_000 + n as u64,
        ));
        results.push(churn(
            Algorithm::Hdrrm,
            &tuning,
            rrm_data::synthetic::independent(n, 4, 94),
            r,
            &Budget::with_samples(256),
            batches,
            2_000 + n as u64,
        ));
    }

    println!("1% churn batches (n/200 deletes + n/200 inserts), parity-checked per batch");
    println!(
        "{:<9} {:>7} {:>2} {:>3} {:>6} {:>11} {:>11} {:>11} {:>11} {:>8} {:>7}",
        "algo",
        "n",
        "d",
        "B",
        "ops/B",
        "inc (s)",
        "naive (s)",
        "inc up/s",
        "naive up/s",
        "speedup",
        "queries"
    );
    for res in &results {
        println!(
            "{:<9} {:>7} {:>2} {:>3} {:>6} {:>11.4} {:>11.4} {:>11.0} {:>11.0} {:>7.1}x {:>7}",
            res.algorithm,
            res.n,
            res.d,
            res.batches,
            res.ops_per_batch,
            res.incremental_seconds,
            res.naive_seconds,
            res.incremental_updates_per_sec,
            res.naive_updates_per_sec,
            res.speedup,
            res.concurrent_queries,
        );
    }
    let best_at_100k =
        results.iter().filter(|r| r.n == 100_000).map(|r| r.speedup).fold(0.0f64, f64::max);
    assert!(
        best_at_100k >= 10.0,
        "acceptance gate: no algorithm sustained >= 10x naive re-prepare at n = 100K \
         (best {best_at_100k:.1}x)"
    );

    // Hand-rolled JSON (no serde in the offline container).
    let mut json =
        format!("{{{},\"churn_fraction\":0.01,\"entries\":[\n", bench_meta("incremental"));
    for (i, e) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        json.push_str(&format!(
            "  {{\"algorithm\":\"{}\",\"n\":{},\"d\":{},\"batches\":{},\"ops_per_batch\":{},\
             \"incremental_seconds\":{:.6},\"naive_seconds\":{:.6},\
             \"incremental_updates_per_sec\":{:.1},\"naive_updates_per_sec\":{:.1},\
             \"speedup\":{:.2},\"concurrent_queries\":{}}}{sep}\n",
            e.algorithm,
            e.n,
            e.d,
            e.batches,
            e.ops_per_batch,
            e.incremental_seconds,
            e.naive_seconds,
            e.incremental_updates_per_sec,
            e.naive_updates_per_sec,
            e.speedup,
            e.concurrent_queries,
        ));
    }
    json.push_str("]}\n");
    std::fs::write("BENCH_incremental.json", &json).expect("write BENCH_incremental.json");
    println!(
        "wrote BENCH_incremental.json (incremental-vs-fresh answers asserted bit-identical in-run)"
    );
}
