//! `repro approx`: validates the sampled-ε approximate tier across the
//! scenario matrix and measures its end-to-end speedup over exact
//! solving; writes `BENCH_approx.json`.
//!
//! Three sections, all asserted in-run:
//!
//! * **Golden cross-checks** — on small 2D slices (one per workload
//!   shape), the sampled answer is evaluated *exactly* over the full
//!   direction space via the dual arrangement and cross-checked against
//!   the exact 2DRRM optimum: the sampled certificate never exceeds the
//!   set's true regret (sample-max ≤ true-max), and the exact optimum
//!   never exceeds it either. The whole section is seeded and
//!   bit-deterministic, so its rendering is compared verbatim against the
//!   checked-in golden file `crates/bench/golden/approx_small.txt` — any
//!   drift in the sampled tier's answers fails the run.
//! * **Coverage trials** — per workload shape (d = 4), repeated sampled
//!   solves under fresh seeds; each answer's certificate is audited on an
//!   independent direction sample (violation fraction ≤ ε), and the
//!   empirical pass rate must be ≥ 1 − δ. This is the `(ε, δ)` statement
//!   checked as a statistic, not taken on faith.
//! * **Speedup** — end-to-end sampled vs. exact solve on the
//!   anti-correlated d = 4 workload, with the sampled answer additionally
//!   asserted bit-identical at 1, 2, and 7 threads. The ≥ 5x acceptance
//!   gate is enforced at `--full` scale (n = 1M); quick scale records the
//!   ratio but marks it `enforced: false`.

use rank_regret::{Engine, Request};
use rrm_core::approx::solve_rrm_sampled_with;
use rrm_core::{kernel, ApproxSpec, Dataset, ExecPolicy, TerminatedBy, UtilitySpace};
use rrm_data::scenario::{matrix, Region};
use rrm_eval::exact_rank_regret_2d;

use crate::{bench_meta, timed, Scale};

/// Where the checked-in golden rendering lives (compile-time path, so the
/// check works from any working directory).
const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/golden/approx_small.txt");

struct GoldenEntry {
    scenario: String,
    n: usize,
    r: usize,
    k_exact: usize,
    k_hat: usize,
    k_true: usize,
    indices: Vec<u32>,
}

impl GoldenEntry {
    /// One canonical line; the concatenation is diffed against the golden
    /// file byte for byte.
    fn render(&self) -> String {
        let idx: Vec<String> = self.indices.iter().map(|i| i.to_string()).collect();
        format!(
            "{} n={} r={} k_exact={} k_hat={} k_true={} indices={}\n",
            self.scenario,
            self.n,
            self.r,
            self.k_exact,
            self.k_hat,
            self.k_true,
            idx.join(","),
        )
    }
}

/// The small-slice cross-check: every d = 2 cell of the matrix, solved
/// approximately and audited exactly.
fn golden_small(engine: &Engine) -> Vec<GoldenEntry> {
    let (n, r) = (500, 4);
    let spec = ApproxSpec { eps: 0.1, delta: 0.05 };
    let mut entries = Vec::new();
    for cell in matrix().into_iter().filter(|c| c.d == 2 && c.region == Region::Full) {
        let data = cell.dataset(n);
        let space = cell.space();

        let exact = engine
            .run(&data, space.as_ref(), &Request::minimize(r))
            .expect("exact 2D solve on a small slice");
        let k_exact = exact.certified_regret.expect("2DRRM certifies");

        let sampled = engine
            .run(&data, space.as_ref(), &Request::minimize(r).approx(spec.eps, spec.delta))
            .expect("sampled solve on a small slice");
        let k_hat = sampled.certified_regret.expect("sampled tier certifies over its sample");
        let (k_true, _) = exact_rank_regret_2d(&data, &sampled.indices, 0.0, 1.0);

        // Deterministic soundness, independent of the (ε, δ) statement:
        // the sample maximum cannot exceed the true maximum, and no set
        // beats the exact optimum.
        assert!(
            k_hat <= k_true,
            "{}: sampled certificate {k_hat} exceeds the set's true regret {k_true}",
            cell.name()
        );
        assert!(
            k_exact <= k_true,
            "{}: exact optimum {k_exact} exceeds a feasible set's regret {k_true}",
            cell.name()
        );

        entries.push(GoldenEntry {
            scenario: cell.name(),
            n,
            r,
            k_exact,
            k_hat,
            k_true,
            indices: sampled.indices,
        });
    }
    entries
}

/// Audit one sampled answer on an independent direction sample: the
/// fraction of directions where the set's rank exceeds the certificate.
fn violation_fraction(
    data: &Dataset,
    space: &dyn UtilitySpace,
    indices: &[u32],
    k_hat: usize,
    eval_dirs: usize,
    eval_seed: u64,
) -> f64 {
    let dirs = rrm_core::approx::sample_directions(space, eval_dirs, eval_seed);
    let soa = data.soa();
    let mut scores = Vec::new();
    let mut violations = 0usize;
    for u in &dirs {
        kernel::scores_into(soa, u, &mut scores);
        let set_best =
            indices.iter().map(|&i| scores[i as usize]).fold(f64::NEG_INFINITY, f64::max);
        let rank = 1 + scores.iter().filter(|&&s| s > set_best).count();
        if rank > k_hat {
            violations += 1;
        }
    }
    violations as f64 / dirs.len() as f64
}

struct CoverageResult {
    scenario: String,
    n: usize,
    r: usize,
    trials: usize,
    passes: usize,
    coverage: f64,
    max_violation_fraction: f64,
}

/// Per-shape coverage trials at d = 4: fresh solve seed per trial, each
/// certificate audited on an independent sample.
fn coverage(scale: Scale) -> Vec<CoverageResult> {
    let (n, trials, eval_dirs) = match scale {
        Scale::Quick => (400usize, 20usize, 800usize),
        Scale::Full => (2_000, 60, 2_000),
    };
    let r = 4;
    let spec = ApproxSpec { eps: 0.1, delta: 0.1 };
    let mut results = Vec::new();
    for cell in matrix().into_iter().filter(|c| c.d == 4 && c.region == Region::Full) {
        let data = cell.dataset(n);
        let space = cell.space();
        let mut passes = 0usize;
        let mut max_violation = 0.0f64;
        for t in 0..trials {
            let solve_seed = 0xA11C_E000 + (t as u64) * 7 + cell.seed;
            let sol = solve_rrm_sampled_with(
                &data,
                r,
                space.as_ref(),
                spec,
                None,
                solve_seed,
                ExecPolicy::default(),
            )
            .expect("sampled solve");
            let k_hat = sol.certified_regret.expect("sampled tier certifies");
            // Independent audit sample: different stream than the solve.
            let frac = violation_fraction(
                &data,
                space.as_ref(),
                &sol.indices,
                k_hat,
                eval_dirs,
                solve_seed ^ 0x5EED_FACE,
            );
            max_violation = max_violation.max(frac);
            if frac <= spec.eps {
                passes += 1;
            }
        }
        let result = CoverageResult {
            scenario: cell.name(),
            n,
            r,
            trials,
            passes,
            coverage: passes as f64 / trials as f64,
            max_violation_fraction: max_violation,
        };
        assert!(
            result.coverage >= 1.0 - spec.delta,
            "{}: empirical coverage {:.3} fell below 1 - delta = {:.3} \
             ({passes}/{trials} trials within eps = {})",
            result.scenario,
            result.coverage,
            1.0 - spec.delta,
            spec.eps,
        );
        results.push(result);
    }
    results
}

struct SpeedupResult {
    n: usize,
    d: usize,
    r: usize,
    exact_algorithm: String,
    exact_seconds: f64,
    approx_seconds: f64,
    speedup: f64,
    enforced: bool,
}

/// End-to-end sampled vs. exact on anti-correlated d = 4 data, plus the
/// thread-count bit-identity gate on the sampled answer.
fn speedup(engine: &Engine, scale: Scale) -> SpeedupResult {
    let n = match scale {
        Scale::Quick => 30_000usize,
        Scale::Full => 1_000_000,
    };
    let (d, r) = (4usize, 8usize);
    let data = rrm_data::synthetic::anticorrelated(n, d, 4242);
    let space = rrm_core::FullSpace::new(d);
    // Build the shared column layout outside both timed regions; both
    // paths score through it.
    let _ = data.soa();

    let exact_request = Request::minimize(r);
    let (exact, exact_seconds) = timed(|| {
        engine.run(&data, &space, &exact_request).expect("exact solve at benchmark scale")
    });

    let approx_request = Request::minimize(r).approx(0.1, 0.05);
    let (approx, approx_seconds) = timed(|| {
        engine.run(&data, &space, &approx_request).expect("sampled solve at benchmark scale")
    });
    assert_eq!(approx.algorithm, rrm_core::Algorithm::Sampled);
    assert!(matches!(approx.terminated_by, TerminatedBy::Sampled { .. }));

    // Bit-identity across thread counts: the sampled tier's ordered-merge
    // contract makes parallelism a pure speed knob.
    for threads in [1usize, 2, 7] {
        let sol = engine
            .run(&data, &space, &approx_request.clone().threads(threads))
            .expect("sampled solve under an explicit thread count");
        assert_eq!(
            (sol.indices.clone(), sol.certified_regret),
            (approx.indices.clone(), approx.certified_regret),
            "sampled answer changed at {threads} threads"
        );
    }

    let result = SpeedupResult {
        n,
        d,
        r,
        exact_algorithm: exact.algorithm.name().to_string(),
        exact_seconds,
        approx_seconds,
        speedup: exact_seconds / approx_seconds.max(1e-9),
        enforced: scale == Scale::Full,
    };
    if result.enforced {
        assert!(
            result.speedup >= 5.0,
            "acceptance gate: sampled tier managed only {:.1}x over exact at n = {} \
             (needs >= 5x)",
            result.speedup,
            result.n,
        );
    }
    result
}

/// Entry point for `repro approx`.
pub fn run(scale: Scale) {
    let engine = scale.engine();

    // Golden cross-checks on small 2D slices.
    let entries = golden_small(&engine);
    let rendering: String = entries.iter().map(GoldenEntry::render).collect();
    println!("golden small-slice cross-checks (exact audit of sampled answers):");
    print!("{rendering}");
    match std::fs::read_to_string(GOLDEN_PATH) {
        Ok(golden) => {
            assert_eq!(
                rendering, golden,
                "sampled answers drifted from the checked-in golden file {GOLDEN_PATH}"
            );
            println!("golden file matched: {GOLDEN_PATH}");
        }
        Err(_) => {
            // Bootstrap: first run writes the golden file to be checked in.
            std::fs::create_dir_all(std::path::Path::new(GOLDEN_PATH).parent().unwrap())
                .expect("create golden dir");
            std::fs::write(GOLDEN_PATH, &rendering).expect("write golden file");
            println!("golden file was missing; wrote {GOLDEN_PATH} (check it in)");
        }
    }

    // Coverage trials per shape.
    let cov = coverage(scale);
    println!(
        "\n{:<24} {:>6} {:>3} {:>7} {:>7} {:>9} {:>13}",
        "scenario", "n", "r", "trials", "passes", "coverage", "max viol frac"
    );
    for c in &cov {
        println!(
            "{:<24} {:>6} {:>3} {:>7} {:>7} {:>8.1}% {:>13.4}",
            c.scenario,
            c.n,
            c.r,
            c.trials,
            c.passes,
            100.0 * c.coverage,
            c.max_violation_fraction,
        );
    }

    // Speedup + thread bit-identity.
    let sp = speedup(&engine, scale);
    println!(
        "\nspeedup: exact {} {:.3}s vs sampled {:.3}s at n={} d={} r={} -> {:.1}x ({})",
        sp.exact_algorithm,
        sp.exact_seconds,
        sp.approx_seconds,
        sp.n,
        sp.d,
        sp.r,
        sp.speedup,
        if sp.enforced { "gate >= 5x enforced" } else { "quick scale, gate not enforced" },
    );

    // Hand-rolled JSON (no serde in the offline container).
    let mut json = format!("{{{},\"golden\":[\n", bench_meta("approx"));
    for (i, e) in entries.iter().enumerate() {
        let sep = if i + 1 == entries.len() { "" } else { "," };
        let idx: Vec<String> = e.indices.iter().map(|x| x.to_string()).collect();
        json.push_str(&format!(
            "  {{\"scenario\":\"{}\",\"n\":{},\"r\":{},\"k_exact\":{},\"k_hat\":{},\
             \"k_true\":{},\"indices\":[{}]}}{sep}\n",
            e.scenario,
            e.n,
            e.r,
            e.k_exact,
            e.k_hat,
            e.k_true,
            idx.join(","),
        ));
    }
    json.push_str("],\"coverage\":[\n");
    for (i, c) in cov.iter().enumerate() {
        let sep = if i + 1 == cov.len() { "" } else { "," };
        json.push_str(&format!(
            "  {{\"scenario\":\"{}\",\"n\":{},\"r\":{},\"trials\":{},\"passes\":{},\
             \"coverage\":{:.4},\"max_violation_fraction\":{:.4}}}{sep}\n",
            c.scenario, c.n, c.r, c.trials, c.passes, c.coverage, c.max_violation_fraction,
        ));
    }
    json.push_str(&format!(
        "],\"speedup\":{{\"n\":{},\"d\":{},\"r\":{},\"exact_algorithm\":\"{}\",\
         \"exact_seconds\":{:.6},\"approx_seconds\":{:.6},\"speedup\":{:.2},\
         \"enforced\":{}}}}}\n",
        sp.n,
        sp.d,
        sp.r,
        sp.exact_algorithm,
        sp.exact_seconds,
        sp.approx_seconds,
        sp.speedup,
        sp.enforced,
    ));
    std::fs::write("BENCH_approx.json", &json).expect("write BENCH_approx.json");
    println!(
        "wrote BENCH_approx.json (golden cross-checks, coverage >= 1-delta, and thread \
         bit-identity all asserted in-run)"
    );
}
