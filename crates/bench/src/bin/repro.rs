//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p bench --bin repro -- <id> [--full]
//! cargo run --release -p bench --bin repro -- all [--full]
//! ```
//!
//! Ids: `table1 table2 table3 theorem2 fig09 fig10 fig11 fig12 fig13 fig14
//! fig15 fig16 fig17 fig18 fig19 fig20 fig21 fig22 fig23 fig24 fig25 fig26
//! fig27 fig28 ablation amortize scale kernels serve anytime incremental
//! approx`.
//! (`amortize`,
//! `scale`, `kernels`, `serve` and `anytime` are not paper figures: `amortize` measures the session API's
//! prepare-once / query-many speedup and writes `BENCH_session.json`;
//! `scale` sweeps the parallel runtime over thread counts {1,2,4,8},
//! asserts bit-identical solutions, and writes per-algorithm speedups to
//! `BENCH_parallel.json`; `kernels` microbenchmarks naive vs. blocked SoA
//! scoring throughput on one thread and writes `BENCH_kernels.json` — the
//! one bench whose headline number is meaningful on a 1-core machine;
//! `serve` load-tests the `rrm_serve` query service over real TCP with a
//! replayed multi-tenant trace — single-tenant hot, mixed, and overload
//! scenarios — parity-checks every served response against an in-process
//! `Session`, and writes `BENCH_serve.json`; `anytime` measures the
//! bound-and-prune machinery of the hard HD solvers — time to first
//! incumbent, pruned-node counts vs. a no-pruning baseline with answers
//! asserted bit-identical, and deterministic gap-vs-budget sweeps — and
//! writes `BENCH_anytime.json`; `incremental` drives 1% churn batches
//! through `Session::update` against naive per-batch re-prepare with a
//! concurrent query stream, asserts per-batch answer parity plus the
//! 10x-or-better sustained-updates gate at n = 100K, and writes
//! `BENCH_incremental.json`; `approx` validates the sampled-ε tier on the
//! scenario matrix — golden small-slice cross-checks against exact 2DRRM,
//! per-shape `(ε, δ)` coverage trials, thread-count bit-identity, and the
//! exact-vs-sampled speedup gate — and writes `BENCH_approx.json`.)
//! A global `--threads N` flag pins the worker count for every other
//! experiment (0 = all cores; equivalent to RRM_THREADS). Default scale is `--quick` (minutes for `all`);
//! `--full` mirrors the paper's parameters. Absolute times differ from the
//! paper's C++/Core-i7 testbed; the *shape* of each series is the
//! reproduction target (EXPERIMENTS.md records both).

use bench::{measure_solver, timed, Outcome, Scale, SYNTHETICS};
use rrm_2d::{Rrm2dOptions, TwoDRrmSolver};
use rrm_core::{
    Algorithm, Budget, Dataset, ExecPolicy, FullSpace, SolverCtx, UtilitySpace, WeakRankingSpace,
};
use rrm_data::real_sim::{island_sim, nba_sim, weather_sim};
use rrm_data::synthetic::lower_bound_arc;
use rrm_eval::report::{render_table, size_tick, Series};
use rrm_eval::{estimate_regret_ratio, exact_rank_regret_2d};
use rrm_hd::{HdrrmOptions, HdrrmSolver};

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    // Global --threads N: pin the worker count for every chunked kernel
    // (same effect as RRM_THREADS=N; 0 = all cores). Applied before any
    // experiment runs, while the process is still single threaded.
    let mut args: Vec<String> = Vec::new();
    let mut it = raw.into_iter();
    while let Some(a) = it.next() {
        if a == "--full" || a == "--quick" {
            continue;
        }
        if a == "--threads" {
            let n = it.next().and_then(|v| v.parse::<usize>().ok()).unwrap_or_else(|| {
                eprintln!("--threads expects a number (0 = all cores)");
                std::process::exit(2);
            });
            std::env::set_var("RRM_THREADS", n.to_string());
            continue;
        }
        args.push(a);
    }
    let scale = Scale::from_args();
    let id = args.first().map(String::as_str).unwrap_or("help");
    let all: Vec<&str> = vec![
        "table1",
        "table2",
        "table3",
        "theorem2",
        "fig09",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "fig15",
        "fig16",
        "fig17",
        "fig18",
        "fig19",
        "fig20",
        "fig21",
        "fig22",
        "fig23",
        "fig24",
        "fig25",
        "fig26",
        "fig27",
        "fig28",
        "ablation",
        "amortize",
        "scale",
        "kernels",
        "serve",
        "anytime",
        "incremental",
        "approx",
    ];
    match id {
        "all" => {
            for x in all {
                run(x, scale);
            }
        }
        "help" | "--help" => {
            eprintln!("usage: repro <id|all> [--full] [--threads N]\nids: {}", all.join(" "));
        }
        x if all.contains(&x) => run(x, scale),
        x => {
            eprintln!("unknown experiment id: {x}");
            std::process::exit(2);
        }
    }
}

fn run(id: &str, scale: Scale) {
    println!("\n================ {id} ({scale:?}) ================");
    match id {
        "table1" => table1(),
        "table2" => table2(),
        "table3" => table3(),
        "theorem2" => theorem2(),
        "fig09" => fig09(scale),
        "fig10" => fig10(scale),
        "fig11" => fig11(scale),
        "fig12" => fig12(scale),
        "fig13" | "fig14" | "fig15" => {
            fig_hd_vs_n(id, scale);
        }
        "fig16" | "fig17" | "fig18" => {
            fig_hd_vs_d(id, scale);
        }
        "fig19" | "fig20" | "fig21" => {
            fig_hd_vs_r(id, scale);
        }
        "fig22" | "fig23" | "fig24" => {
            fig_hd_vs_delta(id, scale);
        }
        "fig25" => fig25(scale),
        "fig26" => fig26(scale),
        "fig27" => fig27(scale),
        "fig28" => fig28(scale),
        "ablation" => ablation(scale),
        "amortize" => amortize(scale),
        "scale" => thread_scaling(scale),
        "kernels" => kernels(scale),
        "serve" => bench::serve_bench::run(scale),
        "anytime" => bench::anytime_bench::run(scale),
        "incremental" => bench::incremental_bench::run(scale),
        "approx" => bench::approx_bench::run(scale),
        _ => unreachable!(),
    }
}

fn table1_data() -> Dataset {
    Dataset::from_rows(&[
        [0.00, 1.00],
        [0.40, 0.95],
        [0.57, 0.75],
        [0.79, 0.60],
        [0.20, 0.50],
        [0.35, 0.30],
        [1.00, 0.00],
    ])
    .unwrap()
}

/// Table I: the example dataset with its rank-regret and regret-ratio
/// columns, plus the RRM/RMS choices before and after the Figure 2 shift.
fn table1() {
    let data = table1_data();
    println!("{:>4} {:>6} {:>6} {:>11} {:>13}", "t", "A1", "A2", "rank-regret", "regret-ratio");
    for i in 0..7u32 {
        let row = data.row(i as usize);
        let (k, _) = exact_rank_regret_2d(&data, &[i], 0.0, 1.0);
        let ratio = estimate_regret_ratio(&data, &[i], &FullSpace::new(2), 50_000, 1).max_ratio;
        println!("{:>4} {:>6.2} {:>6.2} {:>11} {:>12.0}%", i + 1, row[0], row[1], k, 100.0 * ratio);
    }
    let engine = Scale::Full.engine();
    let exact = engine.solver(Algorithm::TwoDRrm).expect("registered");
    let rms_solver = engine.solver(Algorithm::Mdrms).expect("registered");
    let space = FullSpace::new(2);
    let budget = Budget::UNLIMITED;
    let rrm = exact.solve_rrm_ctx(&data, 1, &space, &budget, &SolverCtx::default()).unwrap();
    let rms = rms_solver.solve_rrm_ctx(&data, 1, &space, &budget, &SolverCtx::default()).unwrap();
    println!("\nr = 1 choices: RRM -> t{}, RMS -> t{}", rrm.indices[0] + 1, rms.indices[0] + 1);
    let shifted = data.shift(&[0.0, 4.0]);
    let rrm_s = exact.solve_rrm_ctx(&shifted, 1, &space, &budget, &SolverCtx::default()).unwrap();
    let rms_s =
        rms_solver.solve_rrm_ctx(&shifted, 1, &space, &budget, &SolverCtx::default()).unwrap();
    println!(
        "after A2 += 4:  RRM -> t{} (invariant), RMS -> t{} (changed)",
        rrm_s.indices[0] + 1,
        rms_s.indices[0] + 1
    );
}

/// Table II: the DP matrix trace on D = {t1, t2, t3}, r = 2.
fn table2() {
    use rrm_geom::dual::DualLine;
    use rrm_geom::events::{crossings_with_tracked, initial_ranks};
    let data = table1_data().prefix(3);
    let lines = DualLine::from_dataset(&data);
    let events = crossings_with_tracked(&lines, &[0, 1, 2], 0.0, 1.0);
    let mut rank = initial_ranks(&lines, 0.0);
    println!("initial ranks: l1={} l2={} l3={}", rank[0], rank[1], rank[2]);
    let mut m = rrm_2d::matrix::DpMatrix::new(&[0, 1, 2], &[1, 2, 3], 2);
    let print_m = |m: &rrm_2d::matrix::DpMatrix, label: &str| {
        println!("after {label}:");
        for i in 0..3 {
            for j in 1..=2 {
                let chain: Vec<String> =
                    m.chain_lines(i, j).iter().map(|l| format!("l{}", l + 1)).collect();
                print!("  M[{},{j}] = {{{}}},{}", i + 1, chain.join(","), m.cell(i, j).rank);
            }
            println!();
        }
    };
    print_m(&m, "initialization");
    for ev in &events {
        rank[ev.down as usize] += 1;
        rank[ev.up as usize] -= 1;
        m.extend(ev.down as usize, ev.up as usize, ev.up);
        m.fold_rank(ev.down as usize, rank[ev.down as usize] as u32);
        print_m(&m, &format!("(l{}, l{}) at x = {:.4}", ev.down + 1, ev.up + 1, ev.x));
    }
    let (row, k) = m.best_final();
    println!("result: M[{},2] with rank {k}", row + 1);
}

/// Table III: the HD capability matrix (guarantees from the type system,
/// scalability from measurement).
fn table3() {
    use rrm_core::Algorithm::*;
    println!("{:<26} {:>7} {:>8} {:>6} {:>6}", "criterion", "MDRRR", "MDRRRr", "MDRC", "HDRRM");
    let yes_no = |b: bool| if b { "Yes" } else { "No" };
    println!(
        "{:<26} {:>7} {:>8} {:>6} {:>6}",
        "guarantee on rank-regret",
        yes_no(Mdrrr.has_regret_guarantee()),
        yes_no(MdrrrR.has_regret_guarantee()),
        yes_no(Mdrc.has_regret_guarantee()),
        yes_no(Hdrrm.has_regret_guarantee()),
    );
    println!(
        "{:<26} {:>7} {:>8} {:>6} {:>6}",
        "suitable for RRRM",
        yes_no(Mdrrr.supports_restricted_space()),
        yes_no(MdrrrR.supports_restricted_space()),
        yes_no(Mdrc.supports_restricted_space()),
        yes_no(Hdrrm.supports_restricted_space()),
    );
    println!("{:<26} {:>7} {:>8} {:>6} {:>6}", "scalable for large n, d", "No", "No", "Yes", "Yes");
    println!("{:<26} {:>7} {:>8} {:>6} {:>6}", "acceptable rank-regret", "Yes", "Yes", "No", "Yes");
    println!("(first two rows are encoded in rrm_core::Algorithm and unit-tested)");
}

/// Theorem 2: the arc construction's optimal regret vs the Ω(n/r) bound.
fn theorem2() {
    println!("{:>8} {:>4} {:>14} {:>14}", "n", "r", "optimal regret", "n/(2(r+1))");
    let engine = Scale::Full.engine();
    let exact = engine.solver(Algorithm::TwoDRrm).expect("registered");
    for &(n, r) in &[(200usize, 3usize), (400, 4), (800, 5), (1600, 5)] {
        let data = lower_bound_arc(n, 2);
        let sol = exact
            .solve_rrm_ctx(&data, r, &FullSpace::new(2), &Budget::UNLIMITED, &SolverCtx::default())
            .unwrap();
        println!(
            "{:>8} {:>4} {:>14} {:>14}",
            n,
            r,
            sol.certified_regret.unwrap(),
            n / (2 * (r + 1))
        );
    }
}

// ---------------------------------------------------------------- 2D ----

fn two_d_rows(data: &Dataset, r: usize) -> (f64, f64, usize, usize) {
    let space = FullSpace::new(2);
    let budget = Budget::UNLIMITED;
    let engine = Scale::Full.engine();
    let exact = engine.solver(Algorithm::TwoDRrm).expect("registered");
    let baseline = engine.solver(Algorithm::TwoDRrr).expect("registered");
    let (a, ta) =
        timed(|| exact.solve_rrm_ctx(data, r, &space, &budget, &SolverCtx::default()).unwrap());
    let (b, tb) =
        timed(|| baseline.solve_rrm_ctx(data, r, &space, &budget, &SolverCtx::default()).unwrap());
    let exact_b = exact_rank_regret_2d(data, &b.indices, 0.0, 1.0).0;
    (ta, tb, a.certified_regret.unwrap(), exact_b)
}

/// Fig. 9: 2D time vs n on the three synthetic datasets, r = 5.
fn fig09(scale: Scale) {
    let ns: &[usize] = match scale {
        Scale::Quick => &[100, 1_000, 10_000, 30_000],
        Scale::Full => &[100, 1_000, 10_000, 100_000],
    };
    for (name, gen) in SYNTHETICS {
        let ticks: Vec<String> = ns.iter().map(|&n| size_tick(n)).collect();
        let mut s1 = Series::new("2DRRM time(s)");
        let mut s2 = Series::new("2DRRR time(s)");
        let mut k1 = Series::new("2DRRM regret");
        let mut k2 = Series::new("2DRRR regret");
        for &n in ns {
            let data = gen(n, 2, 9);
            let (ta, tb, ka, kb) = two_d_rows(&data, 5);
            s1.push(ta);
            s2.push(tb);
            k1.push(ka as f64);
            k2.push(kb as f64);
        }
        println!("[{name}]");
        println!("{}", render_table("n", &ticks, &[s1, s2, k1, k2]));
    }
}

/// Fig. 10: 2D time vs r, n = 10K.
fn fig10(scale: Scale) {
    let n = match scale {
        Scale::Quick => 5_000,
        Scale::Full => 10_000,
    };
    let rs: Vec<usize> = (5..=10).collect();
    for (name, gen) in SYNTHETICS {
        let data = gen(n, 2, 10);
        let ticks: Vec<String> = rs.iter().map(|r| r.to_string()).collect();
        let mut s1 = Series::new("2DRRM time(s)");
        let mut s2 = Series::new("2DRRR time(s)");
        for &r in &rs {
            let (ta, tb, _, _) = two_d_rows(&data, r);
            s1.push(ta);
            s2.push(tb);
        }
        println!("[{name}] n = {}", size_tick(n));
        println!("{}", render_table("r", &ticks, &[s1, s2]));
    }
}

/// Fig. 11: 2D time vs n on the Island stand-in.
fn fig11(scale: Scale) {
    let ns: &[usize] = match scale {
        Scale::Quick => &[10_000, 20_000, 40_000],
        Scale::Full => &[10_000, 20_000, 40_000, 60_000],
    };
    let ticks: Vec<String> = ns.iter().map(|&n| size_tick(n)).collect();
    let mut s1 = Series::new("2DRRM time(s)");
    let mut s2 = Series::new("2DRRR time(s)");
    for &n in ns {
        let data = island_sim(n, 11);
        let (ta, tb, _, _) = two_d_rows(&data, 5);
        s1.push(ta);
        s2.push(tb);
    }
    println!("[island-like]");
    println!("{}", render_table("n", &ticks, &[s1, s2]));
}

/// Fig. 12: 2D time vs n on the NBA stand-in (first two attributes).
fn fig12(scale: Scale) {
    let ns: &[usize] = match scale {
        Scale::Quick => &[5_000, 10_000, 20_000],
        Scale::Full => &[5_000, 10_000, 15_000, 20_000],
    };
    let ticks: Vec<String> = ns.iter().map(|&n| size_tick(n)).collect();
    let mut s1 = Series::new("2DRRM time(s)");
    let mut s2 = Series::new("2DRRR time(s)");
    let mut k1 = Series::new("2DRRM regret");
    for &n in ns {
        let data = nba_sim(n, 5, 12).project(&[0, 1]).unwrap();
        let (ta, tb, ka, _) = two_d_rows(&data, 5);
        s1.push(ta);
        s2.push(tb);
        k1.push(ka as f64);
    }
    println!("[nba-like, 2 attrs]");
    println!("{}", render_table("n", &ticks, &[s1, s2, k1]));
}

// ---------------------------------------------------------------- HD ----

/// One HD experiment row: run the roster on `data` through the
/// [`rrm_core::Solver`] trait, report times+regrets.
fn hd_row(
    data: &Dataset,
    r: usize,
    space: &dyn UtilitySpace,
    scale: Scale,
    roster: &[Algorithm],
) -> Vec<Outcome> {
    let samples = scale.eval_samples();
    let engine = scale.engine();
    roster
        .iter()
        .map(|&algo| {
            let solver = engine.solver(algo).expect("every algorithm is registered");
            measure_solver(solver, data, r, space, samples)
        })
        .collect()
}

fn print_hd_table(x_label: &str, ticks: &[String], rows: &[Vec<Outcome>]) {
    let mut series: Vec<Series> = Vec::new();
    if rows.is_empty() {
        return;
    }
    // Build (time, regret) series per algorithm present anywhere, plus the
    // certified threshold for HDRRM (the paper's red cross line).
    let mut algos: Vec<&'static str> = Vec::new();
    for row in rows {
        for o in row {
            if !algos.contains(&o.algorithm) {
                algos.push(o.algorithm);
            }
        }
    }
    for &a in &algos {
        let mut t = Series::new(format!("{a} time(s)"));
        let mut k = Series::new(format!("{a} regret"));
        for row in rows {
            match row.iter().find(|o| o.algorithm == a) {
                Some(o) => {
                    t.push(o.seconds);
                    k.push(o.regret as f64);
                }
                None => {
                    t.push_missing();
                    k.push_missing();
                }
            }
        }
        series.push(t);
        series.push(k);
    }
    let mut cert = Series::new("HDRRM k(D)");
    let mut any_cert = false;
    for row in rows {
        match row.iter().find(|o| o.algorithm == "HDRRM").and_then(|o| o.certified) {
            Some(c) => {
                cert.push(c as f64);
                any_cert = true;
            }
            None => cert.push_missing(),
        }
    }
    if any_cert {
        series.push(cert);
    }
    println!("{}", render_table(x_label, ticks, &series));
}

fn fig_hd_index(id: &str, base: &str) -> usize {
    // fig13/14/15 -> 0/1/2 etc.
    let n: usize = id.trim_start_matches("fig").parse().unwrap();
    let b: usize = base.trim_start_matches("fig").parse().unwrap();
    n - b
}

/// Figs. 13–15: HD time+regret vs n (one synthetic distribution each).
fn fig_hd_vs_n(id: &str, scale: Scale) {
    let (name, gen) = SYNTHETICS[fig_hd_index(id, "fig13")];
    let ns: &[usize] = match scale {
        Scale::Quick => &[1_000, 5_000, 20_000],
        Scale::Full => &[1_000, 10_000, 100_000, 1_000_000],
    };
    let ticks: Vec<String> = ns.iter().map(|&n| size_tick(n)).collect();
    let mut rows = Vec::new();
    for &n in ns {
        let data = gen(n, 4, 13);
        // MDRRRr does not scale (the paper stops it at 10K anti / 100K
        // others); mirror that cut-off.
        let mdrrr_cap = if name == "anti-correlated" { 10_000 } else { 100_000 };
        let mut roster = vec![Algorithm::Hdrrm];
        if n <= mdrrr_cap {
            roster.push(Algorithm::MdrrrR);
        }
        roster.extend([Algorithm::Mdrc, Algorithm::Mdrms]);
        rows.push(hd_row(&data, 10, &FullSpace::new(4), scale, &roster));
    }
    println!("[{name}] d = 4, r = 10");
    print_hd_table("n", &ticks, &rows);
}

/// Figs. 16–18: HD vs dimension.
fn fig_hd_vs_d(id: &str, scale: Scale) {
    let (name, gen) = SYNTHETICS[fig_hd_index(id, "fig16")];
    let n = match scale {
        Scale::Quick => 5_000,
        Scale::Full => 10_000,
    };
    let ds: Vec<usize> = (2..=6).collect();
    let ticks: Vec<String> = ds.iter().map(|d| d.to_string()).collect();
    let mut rows = Vec::new();
    for &d in &ds {
        let data = gen(n, d, 16);
        let mdrrr_cap = if name == "anti-correlated" { 4 } else { 5 };
        let mut roster = vec![Algorithm::Hdrrm];
        if d <= mdrrr_cap {
            roster.push(Algorithm::MdrrrR);
        }
        roster.extend([Algorithm::Mdrc, Algorithm::Mdrms]);
        rows.push(hd_row(&data, 10, &FullSpace::new(d), scale, &roster));
    }
    println!("[{name}] n = {}, r = 10", size_tick(n));
    print_hd_table("d", &ticks, &rows);
}

/// Figs. 19–21: HD vs output size.
fn fig_hd_vs_r(id: &str, scale: Scale) {
    let (name, gen) = SYNTHETICS[fig_hd_index(id, "fig19")];
    let n = match scale {
        Scale::Quick => 5_000,
        Scale::Full => 10_000,
    };
    let rs: Vec<usize> = (10..=15).collect();
    let ticks: Vec<String> = rs.iter().map(|r| r.to_string()).collect();
    let data = gen(n, 4, 19);
    let mut rows = Vec::new();
    let roster = [Algorithm::Hdrrm, Algorithm::MdrrrR, Algorithm::Mdrc, Algorithm::Mdrms];
    for &r in &rs {
        rows.push(hd_row(&data, r, &FullSpace::new(4), scale, &roster));
    }
    println!("[{name}] n = {}, d = 4", size_tick(n));
    print_hd_table("r", &ticks, &rows);
}

/// Figs. 22–24: HDRRM vs δ (sample size).
fn fig_hd_vs_delta(id: &str, scale: Scale) {
    let (name, gen) = SYNTHETICS[fig_hd_index(id, "fig22")];
    let n = match scale {
        Scale::Quick => 5_000,
        Scale::Full => 10_000,
    };
    let deltas = [0.01, 0.03, 0.05, 0.1];
    let ticks: Vec<String> = deltas.iter().map(|d| format!("{d}")).collect();
    let data = gen(n, 4, 22);
    let mut time = Series::new("HDRRM time(s)");
    let mut reg = Series::new("HDRRM regret");
    let mut m_col = Series::new("sample size m");
    for &delta in &deltas {
        let solver = HdrrmSolver::new(HdrrmOptions { delta, ..Default::default() });
        let o = measure_solver(&solver, &data, 10, &FullSpace::new(4), scale.eval_samples());
        time.push(o.seconds);
        reg.push(o.regret as f64);
        m_col.push(rrm_hd::paper_sample_size(n, 10, 4, delta) as f64);
    }
    println!("[{name}] n = {}, d = 4, r = 10", size_tick(n));
    println!("{}", render_table("delta", &ticks, &[time, reg, m_col]));
}

/// Fig. 25: RRRM (weak ranking c = 2) vs n on anti-correlated data.
fn fig25(scale: Scale) {
    let ns: &[usize] = match scale {
        Scale::Quick => &[1_000, 5_000, 20_000],
        Scale::Full => &[1_000, 10_000, 100_000, 1_000_000],
    };
    let ticks: Vec<String> = ns.iter().map(|&n| size_tick(n)).collect();
    let space = WeakRankingSpace::new(4, 2);
    let mut rows = Vec::new();
    for &n in ns {
        let data = rrm_data::synthetic::anticorrelated(n, 4, 25);
        let mut roster = vec![Algorithm::Hdrrm];
        if n <= 100_000 {
            roster.push(Algorithm::MdrrrR);
        }
        rows.push(hd_row(&data, 10, &space, scale, &roster));
    }
    println!("[anti-correlated, RRRM weak ranking c=2] d = 4, r = 10");
    print_hd_table("n", &ticks, &rows);
}

/// Fig. 26: RRRM vs dimension on anti-correlated data.
fn fig26(scale: Scale) {
    let n = match scale {
        Scale::Quick => 5_000,
        Scale::Full => 10_000,
    };
    let ds: Vec<usize> = (3..=6).collect();
    let ticks: Vec<String> = ds.iter().map(|d| d.to_string()).collect();
    let mut rows = Vec::new();
    for &d in &ds {
        let data = rrm_data::synthetic::anticorrelated(n, d, 26);
        let space = WeakRankingSpace::new(d, 2);
        let mut roster = vec![Algorithm::Hdrrm];
        if d <= 5 {
            roster.push(Algorithm::MdrrrR);
        }
        rows.push(hd_row(&data, 10, &space, scale, &roster));
    }
    println!("[anti-correlated, RRRM weak ranking c=2] n = {}, r = 10", size_tick(n));
    print_hd_table("d", &ticks, &rows);
}

/// Fig. 27: HD algorithms on the NBA stand-in (d = 5).
fn fig27(scale: Scale) {
    let ns: &[usize] = match scale {
        Scale::Quick => &[5_000, 10_000, 20_000],
        Scale::Full => &[5_000, 10_000, 15_000, 20_000],
    };
    let ticks: Vec<String> = ns.iter().map(|&n| size_tick(n)).collect();
    let mut rows = Vec::new();
    for &n in ns {
        let data = nba_sim(n, 5, 27);
        let roster = [Algorithm::Hdrrm, Algorithm::MdrrrR, Algorithm::Mdrc, Algorithm::Mdrms];
        rows.push(hd_row(&data, 10, &FullSpace::new(5), scale, &roster));
    }
    println!("[nba-like] d = 5, r = 10");
    print_hd_table("n", &ticks, &rows);
}

/// Fig. 28: HD algorithms on the Weather stand-in (d = 4).
fn fig28(scale: Scale) {
    let ns: &[usize] = match scale {
        Scale::Quick => &[40_000, 80_000],
        Scale::Full => &[40_000, 80_000, 120_000, 160_000],
    };
    let ticks: Vec<String> = ns.iter().map(|&n| size_tick(n)).collect();
    let mut rows = Vec::new();
    for &n in ns {
        let data = weather_sim(n, 4, 28);
        let roster = [Algorithm::Hdrrm, Algorithm::Mdrc, Algorithm::Mdrms];
        rows.push(hd_row(&data, 10, &FullSpace::new(4), scale, &roster));
    }
    println!("[weather-like] d = 4, r = 10");
    print_hd_table("n", &ticks, &rows);
}

/// Design-choice ablations called out in DESIGN.md (quality side; the
/// timing side lives in the Criterion benches).
fn ablation(scale: Scale) {
    // (a) HDRRM discretization: grid only / samples only / both, and γ.
    let n = 5_000;
    let data = rrm_data::synthetic::anticorrelated(n, 4, 31);
    let samples = scale.eval_samples();
    println!("[ablation: HDRRM discretization] anti-correlated n = {n}, d = 4, r = 10");
    let mut labels = Vec::new();
    let mut time = Series::new("time(s)");
    let mut reg = Series::new("regret");
    let m_default = rrm_hd::paper_sample_size(n, 10, 4, scale.hdrrm().delta);
    for (label, m, gamma) in [
        ("Da+Db (default)", m_default, 6usize),
        ("Da only", m_default, 1),
        ("Db only (gamma=6)", 0, 6),
        ("gamma=2", m_default, 2),
        ("gamma=10", m_default, 10),
    ] {
        let solver = HdrrmSolver::new(HdrrmOptions { m_override: Some(m), gamma, ..scale.hdrrm() });
        let o = measure_solver(&solver, &data, 10, &FullSpace::new(4), samples);
        labels.push(label.to_string());
        time.push(o.seconds);
        reg.push(o.regret as f64);
    }
    println!("{}", render_table("variant", &labels, &[time, reg]));

    // (b) Basis inclusion (Theorem 7's requirement): the boundary tuples
    // buy the (1-eps) utility floor but consume budget slots.
    println!("[ablation: basis inclusion] anti-correlated n = 5K, d = 4, r = 10");
    let data_b = rrm_data::synthetic::anticorrelated(5_000, 4, 34);
    let mut labels = Vec::new();
    let mut time = Series::new("time(s)");
    let mut reg = Series::new("regret");
    for (label, basis) in [("with basis (paper)", true), ("without basis", false)] {
        let solver = HdrrmSolver::new(HdrrmOptions { include_basis: basis, ..scale.hdrrm() });
        let o = measure_solver(&solver, &data_b, 10, &FullSpace::new(4), samples);
        labels.push(label.to_string());
        time.push(o.seconds);
        reg.push(o.regret as f64);
    }
    println!("{}", render_table("variant", &labels, &[time, reg]));

    // (c) Skyline candidate pre-filtering inside ASMS.
    println!("[ablation: skyline candidates] independent n = 20K, d = 4, r = 10");
    let data = rrm_data::synthetic::independent(20_000, 4, 32);
    let mut labels = Vec::new();
    let mut time = Series::new("time(s)");
    let mut reg = Series::new("regret");
    for (label, sky) in [("skyline candidates", true), ("all candidates", false)] {
        let solver = HdrrmSolver::new(HdrrmOptions { skyline_candidates: sky, ..scale.hdrrm() });
        let o = measure_solver(&solver, &data, 10, &FullSpace::new(4), samples);
        labels.push(label.to_string());
        time.push(o.seconds);
        reg.push(o.regret as f64);
    }
    println!("{}", render_table("variant", &labels, &[time, reg]));

    // (d) 2DRRM event machinery: stream vs paper-faithful full sweep.
    println!("[ablation: 2DRRM sweep] anti-correlated 2D n = 10K, r = 5");
    let data = rrm_data::synthetic::anticorrelated(10_000, 2, 33);
    let mut labels = Vec::new();
    let mut time = Series::new("time(s)");
    let mut reg = Series::new("regret");
    for (label, full) in [("skyline-crossing stream", false), ("full arrangement sweep", true)] {
        let solver =
            TwoDRrmSolver::new(Rrm2dOptions { use_full_sweep: full, ..Default::default() });
        let o = measure_solver(&solver, &data, 5, &FullSpace::new(2), samples);
        labels.push(label.to_string());
        time.push(o.seconds);
        reg.push(o.regret as f64);
    }
    println!("{}", render_table("variant", &labels, &[time, reg]));
}

/// Session amortization: the prepare-once / query-many API against
/// one-shot solving, per algorithm, on the serving workload the paper
/// motivates (one dataset, a stream of queries with repeating sizes).
/// Prints a table and writes `BENCH_session.json` with the raw numbers.
fn amortize(scale: Scale) {
    use rank_regret::Session;

    struct Entry {
        algorithm: &'static str,
        n: usize,
        d: usize,
        queries: usize,
        one_shot_seconds: f64,
        prepare_seconds: f64,
        prepared_query_seconds: f64,
    }

    let engine = scale.engine();
    // Per algorithm: a dataset it can handle at benchmarkable scale, a
    // stream of query sizes (3 distinct values x 4 rounds — repeats are
    // the point: that is what serving traffic looks like), and a sample
    // budget that keeps the randomized solvers comparable on both paths.
    let workloads: Vec<(Algorithm, Dataset, Vec<usize>, Budget)> = vec![
        (
            Algorithm::TwoDRrm,
            rrm_data::synthetic::anticorrelated(2_000, 2, 77),
            vec![4, 8, 16, 4, 8, 16, 4, 8, 16, 4, 8, 16],
            Budget::UNLIMITED,
        ),
        (
            Algorithm::TwoDRrr,
            rrm_data::synthetic::anticorrelated(2_000, 2, 77),
            vec![4, 8, 16, 4, 8, 16, 4, 8, 16, 4, 8, 16],
            Budget::UNLIMITED,
        ),
        (
            Algorithm::Hdrrm,
            rrm_data::synthetic::independent(2_000, 4, 77),
            vec![8, 12, 16, 8, 12, 16, 8, 12, 16, 8, 12, 16],
            Budget::with_samples(300),
        ),
        (
            Algorithm::Mdrrr,
            rrm_data::synthetic::independent(25, 3, 77),
            vec![2, 4, 6, 2, 4, 6, 2, 4, 6, 2, 4, 6],
            // Cap the k-set enumeration: unlimited LP budgets put this
            // baseline in the minutes-per-query regime (the paper's "does
            // not scale" point); the cap binds both paths identically.
            Budget {
                max_enumerations: Some(10_000),
                max_lp_calls: Some(100_000),
                ..Budget::UNLIMITED
            },
        ),
        (
            Algorithm::MdrrrR,
            rrm_data::synthetic::independent(2_000, 4, 77),
            vec![8, 12, 16, 8, 12, 16, 8, 12, 16, 8, 12, 16],
            Budget::with_samples(2_000),
        ),
        (
            Algorithm::Mdrc,
            rrm_data::synthetic::independent(2_000, 4, 77),
            vec![8, 12, 16, 8, 12, 16, 8, 12, 16, 8, 12, 16],
            Budget::with_samples(300),
        ),
        (
            Algorithm::Mdrms,
            rrm_data::synthetic::independent(2_000, 4, 77),
            vec![8, 12, 16, 8, 12, 16, 8, 12, 16, 8, 12, 16],
            Budget::with_samples(300),
        ),
        (
            Algorithm::BruteForce,
            rrm_data::synthetic::independent(16, 2, 77),
            vec![1, 2, 3, 1, 2, 3, 1, 2, 3, 1, 2, 3],
            Budget::with_samples(2_000),
        ),
    ];

    println!(
        "{:<11} {:>5} {:>2} {:>4} {:>12} {:>12} {:>12} {:>9}",
        "algorithm", "n", "d", "Q", "one-shot(s)", "prepare(s)", "queries(s)", "speedup"
    );
    let mut entries: Vec<Entry> = Vec::new();
    for (algo, data, sizes, budget) in &workloads {
        let solver = engine.solver(*algo).expect("registered");
        let space = FullSpace::new(data.dim());

        // One-shot path: every query re-derives the per-dataset state.
        let (results, one_shot_seconds) = timed(|| {
            sizes
                .iter()
                .map(|&r| {
                    solver
                        .solve_rrm_ctx(data, r, &space, budget, &SolverCtx::default())
                        .expect("one-shot solve")
                })
                .collect::<Vec<_>>()
        });

        // Prepared path: bind once, then the same query stream.
        let (prepared, prepare_seconds) = timed(|| solver.prepare(data, &space).expect("prepare"));
        let (prepared_results, prepared_query_seconds) = timed(|| {
            sizes
                .iter()
                .map(|&r| prepared.solve_rrm(r, budget).expect("prepared solve"))
                .collect::<Vec<_>>()
        });
        // The whole point is amortization *without* answer drift.
        assert_eq!(results, prepared_results, "{algo}: prepared path diverged");

        let speedup = one_shot_seconds / prepared_query_seconds.max(1e-9);
        println!(
            "{:<11} {:>5} {:>2} {:>4} {:>12.4} {:>12.4} {:>12.4} {:>8.1}x",
            solver.name(),
            data.n(),
            data.dim(),
            sizes.len(),
            one_shot_seconds,
            prepare_seconds,
            prepared_query_seconds,
            speedup,
        );
        entries.push(Entry {
            algorithm: solver.name(),
            n: data.n(),
            d: data.dim(),
            queries: sizes.len(),
            one_shot_seconds,
            prepare_seconds,
            prepared_query_seconds,
        });
    }

    // Hand-rolled JSON (no serde in the offline container).
    let mut json = format!("{{{},\"entries\":[\n", bench::bench_meta("session_amortization"));
    for (i, e) in entries.iter().enumerate() {
        let sep = if i + 1 == entries.len() { "" } else { "," };
        json.push_str(&format!(
            "  {{\"algorithm\":\"{}\",\"n\":{},\"d\":{},\"queries\":{},\
             \"one_shot_seconds\":{:.6},\"one_shot_per_query\":{:.6},\
             \"prepare_seconds\":{:.6},\"prepared_query_seconds\":{:.6},\
             \"prepared_per_query\":{:.6},\"per_query_speedup\":{:.2}}}{sep}\n",
            e.algorithm,
            e.n,
            e.d,
            e.queries,
            e.one_shot_seconds,
            e.one_shot_seconds / e.queries as f64,
            e.prepare_seconds,
            e.prepared_query_seconds,
            e.prepared_query_seconds / e.queries as f64,
            (e.one_shot_seconds / e.queries as f64)
                / (e.prepared_query_seconds / e.queries as f64).max(1e-9),
        ));
    }
    json.push_str("]}\n");
    std::fs::write("BENCH_session.json", &json).expect("write BENCH_session.json");
    println!("wrote BENCH_session.json");

    // Smoke the batch surface too: a Session over the 2D dataset must
    // reproduce the direct prepared results.
    let (_, data, sizes, budget) = &workloads[0];
    let session = Session::new(data.clone());
    let requests: Vec<rank_regret::Request> =
        sizes.iter().map(|&r| rank_regret::Request::minimize(r).budget(budget.clone())).collect();
    let ok = session.run_batch(&requests).into_iter().filter(|r| r.is_ok()).count();
    println!("session batch: {ok}/{} requests answered", requests.len());
}

/// Thread-scaling sweep for the parallel execution layer: per algorithm,
/// one prepare + a query stream at 1/2/4/8 worker threads. Asserts the
/// solutions are bit-identical across thread counts (the determinism
/// contract), prints per-count timings, and writes `BENCH_parallel.json`
/// with the speedups relative to one thread.
fn thread_scaling(scale: Scale) {
    use rank_regret::{Engine, Tuning};

    let thread_counts = [1usize, 2, 4, 8];
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());

    // Per algorithm: a dataset sized so kernels dominate, a query stream,
    // and a sample budget holding the randomized solvers to useful sizes.
    let workloads: Vec<(Algorithm, Dataset, Vec<usize>, Budget)> = vec![
        (
            Algorithm::TwoDRrm,
            rrm_data::synthetic::anticorrelated(4_000, 2, 88),
            vec![4, 8, 16],
            Budget::UNLIMITED,
        ),
        (
            Algorithm::TwoDRrr,
            rrm_data::synthetic::anticorrelated(4_000, 2, 88),
            vec![4, 8, 16],
            Budget::UNLIMITED,
        ),
        (
            Algorithm::Hdrrm,
            rrm_data::synthetic::independent(4_000, 4, 88),
            vec![8, 12, 16],
            Budget::with_samples(1_500),
        ),
        (
            Algorithm::MdrrrR,
            rrm_data::synthetic::independent(4_000, 4, 88),
            vec![8, 12, 16],
            Budget::with_samples(4_000),
        ),
        (
            Algorithm::Mdrc,
            rrm_data::synthetic::independent(20_000, 4, 88),
            vec![8, 12, 16],
            Budget::UNLIMITED,
        ),
        (
            Algorithm::Mdrms,
            rrm_data::synthetic::anticorrelated(8_000, 4, 88),
            vec![8, 12, 16],
            Budget::with_samples(1_000),
        ),
        (
            Algorithm::Mdrrr,
            rrm_data::synthetic::independent(22, 3, 88),
            vec![3, 5],
            Budget {
                max_enumerations: Some(5_000),
                max_lp_calls: Some(50_000),
                ..Budget::UNLIMITED
            },
        ),
        (
            Algorithm::BruteForce,
            rrm_data::synthetic::independent(16, 2, 88),
            vec![1, 2, 3],
            Budget::with_samples(20_000),
        ),
    ];

    struct Entry {
        algorithm: &'static str,
        n: usize,
        d: usize,
        queries: usize,
        seconds: Vec<f64>,
    }

    // On a single core every "speedup" is pure scheduling noise; stamp the
    // entries invalid so stale numbers can't be mistaken for scaling data.
    let valid = cores > 1;
    if !valid {
        eprintln!("==========================================================================");
        eprintln!("WARNING: this machine has 1 core — thread-scaling speedups below are");
        eprintln!("scheduling noise, NOT scaling data. BENCH_parallel.json entries will be");
        eprintln!("stamped \"valid\": false; rerun on multi-core hardware for real numbers.");
        eprintln!("==========================================================================");
    }
    println!("machine cores: {cores} (speedups above the core count are not expected)");
    println!(
        "{:<11} {:>6} {:>2} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "algorithm", "n", "d", "t=1 (s)", "t=2 (s)", "t=4 (s)", "t=8 (s)", "x @ 4"
    );
    let mut entries: Vec<Entry> = Vec::new();
    for (algo, data, sizes, budget) in &workloads {
        let space = FullSpace::new(data.dim());
        let mut seconds: Vec<f64> = Vec::new();
        let mut baseline: Option<Vec<rrm_core::Solution>> = None;
        for &t in &thread_counts {
            let tuning = Tuning {
                hdrrm: scale.hdrrm(),
                mdrrr_r: scale.mdrrr_r(),
                mdrms: scale.mdrms(),
                exec: ExecPolicy::threads(t),
                ..Default::default()
            };
            let engine = Engine::with_tuning(&tuning);
            let (prepared, prep_s) = timed(|| {
                engine
                    .prepare(rank_regret::AlgoChoice::Fixed(*algo), data, &space)
                    .expect("prepare")
            });
            let (results, query_s) = timed(|| {
                sizes
                    .iter()
                    .map(|&r| prepared.solve_rrm(r, budget).expect("prepared solve"))
                    .collect::<Vec<_>>()
            });
            // The determinism contract: identical solutions at any count.
            match &baseline {
                None => baseline = Some(results),
                Some(b) => assert_eq!(b, &results, "{algo}: thread count changed the answer"),
            }
            seconds.push(prep_s + query_s);
        }
        let speedup4 = seconds[0] / seconds[2].max(1e-9);
        println!(
            "{:<11} {:>6} {:>2} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>7.2}x",
            algo.name(),
            data.n(),
            data.dim(),
            seconds[0],
            seconds[1],
            seconds[2],
            seconds[3],
            speedup4,
        );
        entries.push(Entry {
            algorithm: algo.name(),
            n: data.n(),
            d: data.dim(),
            queries: sizes.len(),
            seconds,
        });
    }

    // Hand-rolled JSON (no serde in the offline container).
    let mut json =
        format!("{{{},\"thread_counts\":[1,2,4,8],", bench::bench_meta("thread_scaling"));
    json.push_str(&format!("\"machine_cores\":{cores},\"entries\":[\n"));
    for (i, e) in entries.iter().enumerate() {
        let sep = if i + 1 == entries.len() { "" } else { "," };
        let secs: Vec<String> = e.seconds.iter().map(|s| format!("{s:.6}")).collect();
        let speedups: Vec<String> =
            e.seconds.iter().map(|s| format!("{:.3}", e.seconds[0] / s.max(1e-9))).collect();
        json.push_str(&format!(
            "  {{\"algorithm\":\"{}\",\"n\":{},\"d\":{},\"queries\":{},\
             \"seconds\":[{}],\"speedups\":[{}],\"valid\":{valid}}}{sep}\n",
            e.algorithm,
            e.n,
            e.d,
            e.queries,
            secs.join(","),
            speedups.join(","),
        ));
    }
    json.push_str("]}\n");
    std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
    println!("wrote BENCH_parallel.json");
    if !valid {
        println!("NOTE: entries stamped \"valid\": false (machine_cores == 1).");
    }
}

/// Naive vs. blocked scoring-kernel throughput on one thread: the
/// sequential half of the ROADMAP's "make the parallel runtime pay" item,
/// measurable even in a 1-core container. For each (n, d) the same
/// direction batch is scored by the row-major scalar reference and by the
/// cache-blocked SoA kernel; both must agree bit-for-bit before timing
/// counts. Writes `BENCH_kernels.json`.
fn kernels(scale: Scale) {
    use rrm_core::kernel::{self, ScoreScratch};
    use rrm_core::utility::dot;

    let (reps, n_dirs) = match scale {
        Scale::Quick => (3usize, 64usize),
        Scale::Full => (10, 64),
    };
    let ns: [usize; 2] = [10_000, 100_000];
    let ds: [usize; 3] = [2, 4, 8];

    struct Entry {
        n: usize,
        d: usize,
        dirs: usize,
        naive_seconds: f64,
        blocked_seconds: f64,
    }

    println!("single-thread scoring throughput, best of {reps} reps, {n_dirs} directions");
    println!(
        "{:>8} {:>2} {:>14} {:>14} {:>8}",
        "n", "d", "naive (M/s)", "blocked (M/s)", "speedup"
    );
    let mut entries: Vec<Entry> = Vec::new();
    for &n in &ns {
        for &d in &ds {
            let data = rrm_data::synthetic::independent(n, d, 41);
            let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(42);
            let space = FullSpace::new(d);
            let dirs: Vec<Vec<f64>> =
                (0..n_dirs).map(|_| space.sample_direction(&mut rng)).collect();
            let soa = data.soa(); // transpose once, outside the timed region
            let mut scratch = ScoreScratch::new();

            // Parity gate: the blocked kernel must reproduce the scalar
            // reference bit-for-bit or the timing below is meaningless.
            let mut naive_buf: Vec<f64> = Vec::with_capacity(n);
            kernel::for_each_scores(soa, &dirs, &mut scratch, |di, scores| {
                naive_buf.clear();
                naive_buf.extend(data.rows().map(|row| dot(&dirs[di], row)));
                assert_eq!(
                    naive_buf.iter().map(|s| s.to_bits()).collect::<Vec<u64>>(),
                    scores.iter().map(|s| s.to_bits()).collect::<Vec<u64>>(),
                    "kernel parity violation at n={n} d={d} dir={di}"
                );
            });

            // Naive baseline: row-major scalar dots into a reused buffer
            // (exactly the pre-kernel utilities_into hot loop).
            let naive_seconds = (0..reps)
                .map(|_| {
                    timed(|| {
                        let mut sink = 0.0f64;
                        for u in &dirs {
                            naive_buf.clear();
                            naive_buf.extend(data.rows().map(|row| dot(u, row)));
                            sink += naive_buf[n - 1];
                        }
                        std::hint::black_box(sink)
                    })
                    .1
                })
                .fold(f64::INFINITY, f64::min);

            // Blocked SoA kernel, same consume shape.
            let blocked_seconds = (0..reps)
                .map(|_| {
                    timed(|| {
                        let mut sink = 0.0f64;
                        kernel::for_each_scores(soa, &dirs, &mut scratch, |_, scores| {
                            sink += scores[n - 1];
                        });
                        std::hint::black_box(sink)
                    })
                    .1
                })
                .fold(f64::INFINITY, f64::min);

            let ops = (n * n_dirs) as f64;
            println!(
                "{:>8} {:>2} {:>14.1} {:>14.1} {:>7.2}x",
                n,
                d,
                ops / naive_seconds.max(1e-12) / 1e6,
                ops / blocked_seconds.max(1e-12) / 1e6,
                naive_seconds / blocked_seconds.max(1e-12),
            );
            entries.push(Entry { n, d, dirs: n_dirs, naive_seconds, blocked_seconds });
        }
    }

    // Hand-rolled JSON (no serde in the offline container).
    let mut json =
        format!("{{{},\"threads\":1,\"entries\":[\n", bench::bench_meta("scoring_kernels"));
    for (i, e) in entries.iter().enumerate() {
        let sep = if i + 1 == entries.len() { "" } else { "," };
        let ops = (e.n * e.dirs) as f64;
        json.push_str(&format!(
            "  {{\"n\":{},\"d\":{},\"dirs\":{},\
             \"naive_seconds\":{:.6},\"blocked_seconds\":{:.6},\
             \"naive_throughput\":{:.0},\"blocked_throughput\":{:.0},\
             \"speedup\":{:.3}}}{sep}\n",
            e.n,
            e.d,
            e.dirs,
            e.naive_seconds,
            e.blocked_seconds,
            ops / e.naive_seconds.max(1e-12),
            ops / e.blocked_seconds.max(1e-12),
            e.naive_seconds / e.blocked_seconds.max(1e-12),
        ));
    }
    json.push_str("]}\n");
    std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    println!("wrote BENCH_kernels.json (throughput in tuple*direction scores per second)");
}
