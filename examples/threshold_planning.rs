//! Planning with the size/regret trade-off curve.
//!
//! A product team wants to know: how many items must the landing page
//! show so every visitor sees something in their personal top-k? The
//! Pareto frontier from one family of exact 2D runs answers every such
//! question at once; the RRR solver answers a single threshold directly.
//!
//! Run with: `cargo run --release --example threshold_planning`

use rank_regret::prelude::*;
use rrm_2d::{pareto_frontier, Rrm2dOptions};
use rrm_data::real_sim::island_sim;

fn main() -> Result<(), RrmError> {
    // Island-like geographic data (simulated stand-in; see DESIGN.md).
    let data = island_sim(10_000, 3);
    println!("dataset: {} tuples (island-like, 2D)\n", data.n());

    let frontier = pareto_frontier(&data, 12, &FullSpace::new(2), Rrm2dOptions::default())?;
    println!("{:>5} {:>18}", "size", "best worst-rank");
    for p in &frontier {
        println!("{:>5} {:>18}", p.r, p.regret);
    }

    // Direct threshold queries (exact RRR).
    for k in [1usize, 5, 20] {
        let sol = rank_regret::represent(&data).threshold(k).solve()?;
        println!("\nguarantee top-{k} for everyone -> {} tuples: {:?}", sol.size(), sol.indices);
        // Consistency with the frontier: the minimal size whose frontier
        // regret meets the threshold.
        if let Some(p) = frontier.iter().find(|p| p.regret <= k) {
            assert!(sol.size() <= p.r, "RRR must not exceed the frontier answer");
        }
    }
    Ok(())
}
