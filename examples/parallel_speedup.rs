//! The parallel execution layer in three acts: configure a thread budget,
//! watch the same query stream answered faster, and verify the answers
//! are bit-identical — parallelism is a speed knob, never a semantics
//! knob.
//!
//! ```sh
//! cargo run --release --example parallel_speedup
//! RRM_THREADS=2 cargo run --release --example parallel_speedup
//! ```

use std::time::Instant;

use rank_regret::prelude::*;
use rank_regret::rrm_data::synthetic::anticorrelated;

fn main() {
    // Anti-correlated data makes the skyline (and hence every kernel's
    // working set) large — the worst case the paper stresses.
    let data = anticorrelated(3_000, 4, 7);
    let requests: Vec<Request> = [8usize, 12, 16, 8, 12, 16]
        .iter()
        .map(|&r| Request::minimize(r).budget(Budget::with_samples(1_000)))
        .collect();

    let run_under = |exec: ExecPolicy| -> (Vec<Solution>, f64, f64) {
        let session = Session::new(data.clone()).exec(exec);
        let start = Instant::now();
        // First query triggers preparation under the chosen policy.
        let first = session.run(&requests[0]).expect("query").solution;
        let prepare_and_first = start.elapsed().as_secs_f64();
        let start = Instant::now();
        let mut rest: Vec<Solution> = requests[1..]
            .iter()
            .map(|request| session.run(request).expect("query").solution)
            .collect();
        let queries = start.elapsed().as_secs_f64();
        rest.insert(0, first);
        (rest, prepare_and_first, queries)
    };

    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!("machine cores: {cores}");

    let (sequential, seq_prep, seq_q) = run_under(ExecPolicy::sequential());
    println!("sequential:     prepare+first {seq_prep:.3}s, remaining queries {seq_q:.3}s");

    let (all_cores, par_prep, par_q) = run_under(ExecPolicy::threads(0));
    println!("all cores:      prepare+first {par_prep:.3}s, remaining queries {par_q:.3}s");

    let (seven, _, _) = run_under(ExecPolicy::threads(7));

    // The determinism contract: any thread count, the same bits.
    assert_eq!(sequential, all_cores, "thread count changed an answer");
    assert_eq!(sequential, seven, "thread count changed an answer");
    println!(
        "all {} answers identical across 1 / {} / 7 threads — parallelism only buys time",
        sequential.len(),
        cores
    );
    let speedup = (seq_prep + seq_q) / (par_prep + par_q).max(1e-9);
    println!("end-to-end speedup at {cores} core(s): {speedup:.2}x");
}
