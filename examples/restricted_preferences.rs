//! RRRM: when something is known about user preferences, restricting the
//! utility space yields representatives with strictly better guarantees
//! (Section I: "The solution for RRRM usually has a lower regret level and
//! can better serve the specific preferences of some users").
//!
//! Three restriction styles from the literature the paper cites:
//! * weak rankings  — "attribute 1 matters at least as much as 2, 2 ≥ 3";
//! * weight boxes   — a mined weight vector expanded by a tolerance;
//! * spherical caps — directions within an angle of an estimate.
//!
//! Run with: `cargo run --release --example restricted_preferences`

use rank_regret::prelude::*;
use rrm_data::synthetic::anticorrelated;
use rrm_eval::estimate_rank_regret;
use rrm_hd::HdrrmOptions;

fn main() -> Result<(), RrmError> {
    let data = anticorrelated(5_000, 4, 7);
    let r = 10;
    let opts = HdrrmOptions { m_override: Some(2_000), ..Default::default() };
    println!("dataset: {} tuples x {} attrs; budget r = {r}\n", data.n(), data.dim());

    // Full space L (plain RRM).
    let full = rank_regret::minimize(&data).size(r).hdrrm_options(opts).solve()?;
    report("full space L", &data, &full, &FullSpace::new(4));

    // Weak ranking: u1 >= u2 >= u3 (the paper's RRRM experiment, c = 2).
    let weak = WeakRankingSpace::new(4, 2);
    let sol = rank_regret::minimize(&data).size(r).space(weak).hdrrm_options(opts).solve()?;
    report("weak ranking (c=2)", &data, &sol, &weak);

    // Weight box around a mined estimate w = (0.4, 0.3, 0.2, 0.1) +/- 0.1.
    let boxed = BoxSpace::around(&[0.4, 0.3, 0.2, 0.1], 0.1);
    let sol =
        rank_regret::minimize(&data).size(r).space(boxed.clone()).hdrrm_options(opts).solve()?;
    report("weight box +/-0.1", &data, &sol, &boxed);

    // Spherical cap of 15 degrees around the same estimate.
    let cap = SphereCap::new(&[0.4, 0.3, 0.2, 0.1], 15f64.to_radians());
    let sol =
        rank_regret::minimize(&data).size(r).space(cap.clone()).hdrrm_options(opts).solve()?;
    report("15-degree cap", &data, &sol, &cap);

    println!(
        "\nTighter spaces -> smaller worst-case ranks: the representative\n\
         set specializes to the preferences that are actually possible."
    );
    Ok(())
}

fn report(label: &str, data: &Dataset, sol: &Solution, space: &dyn UtilitySpace) {
    // Estimate the regret over the *restricted* space (what its users see).
    let est = estimate_rank_regret(data, &sol.indices, space, 20_000, 99);
    println!(
        "{label:<20} certified(D) = {:>4}   estimated over space = {:>4}   size = {}",
        sol.certified_regret.unwrap_or(0),
        est.max_rank,
        sol.size()
    );
}
