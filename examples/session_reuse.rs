//! Prepare once, query many: the [`Session`] API.
//!
//! ```text
//! cargo run --release --example session_reuse
//! ```
//!
//! A session binds the engine to one dataset, front-loads the per-dataset
//! work (skyline, dual arrangement, discretization grids, ...) on first
//! use, and then answers a stream of typed requests cheaply — the shape
//! of a server handling many users' queries over one catalog. Prepared
//! handles are `Send + Sync`, so the same session serves threads
//! concurrently.

use std::time::Instant;

use rank_regret::prelude::*;

fn main() -> Result<(), RrmError> {
    // A mid-sized 2D catalog; `Auto` picks the exact 2D solver.
    let data = rank_regret::rrm_data::synthetic::anticorrelated(2_000, 2, 7);

    // -------- one-shot baseline: every query re-derives everything ----
    let start = Instant::now();
    for r in [2usize, 5, 10, 2, 5, 10] {
        let _ = rank_regret::minimize(&data).size(r).solve()?;
    }
    let one_shot = start.elapsed().as_secs_f64();

    // -------- session: bind once, then the same stream ----------------
    let session = rank_regret::session(&data);
    let start = Instant::now();
    let batch: Vec<Request> =
        [2usize, 5, 10, 2, 5, 10].iter().map(|&r| Request::minimize(r)).collect();
    let responses = session.run_batch(&batch);
    let prepared = start.elapsed().as_secs_f64();
    for result in &responses {
        let resp = result.as_ref().expect("feasible request");
        println!(
            "r = {:>2} -> {} tuples, certified rank-regret {:?} ({:.4}s)",
            resp.request.param(),
            resp.solution.size(),
            resp.solution.certified_regret,
            resp.seconds,
        );
    }
    println!("one-shot stream: {one_shot:.3}s; session stream: {prepared:.3}s");

    // -------- mixed directions and algorithms against one session -----
    let rrr = session.run(&Request::represent(25))?;
    println!(
        "threshold 25 -> {} tuples (exact RRR, reusing the same sweep cache)",
        rrr.solution.size()
    );
    let baseline = session
        .run(&Request::minimize(5).algo(Algorithm::Mdrms).budget(Budget::with_samples(500)))?;
    println!("MDRMS baseline picked {:?}", baseline.solution.indices);

    // -------- concurrent queries over a shared session -----------------
    // Prepared handles are Send + Sync: scoped threads borrow the session
    // and answer read-only queries in parallel.
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..4u32 {
            let session = &session;
            scope.spawn(move || {
                let r = 2 + (t as usize % 3) * 4;
                let resp = session.run(&Request::minimize(r)).expect("feasible");
                println!(
                    "thread {t}: r = {r} -> regret {:?} in {:.4}s",
                    resp.solution.certified_regret, resp.seconds
                );
            });
        }
    });
    println!("4 concurrent queries finished in {:.4}s total", t0.elapsed().as_secs_f64());
    Ok(())
}
