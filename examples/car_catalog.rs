//! The paper's motivating scenario: Alice browses a large car database
//! with a horsepower/fuel-economy trade-off and wants a shortlist that is
//! good for *whatever* her exact weighting turns out to be.
//!
//! We generate an anti-correlated catalog (power costs economy), produce
//! shortlists of several sizes, and report the worst-case rank each
//! shortlist guarantees — both absolutely and as the paper's suggested
//! percentage of the catalog size.
//!
//! Run with: `cargo run --release --example car_catalog`

use rank_regret::prelude::*;
use rrm_data::synthetic::anticorrelated;
use rrm_eval::exact_rank_regret_2d;

fn main() -> Result<(), RrmError> {
    // 20 000 cars, 2 attributes: [0] = HP, [1] = MPG (normalized).
    let catalog = anticorrelated(20_000, 2, 42);
    println!("catalog: {} cars (HP vs MPG, anti-correlated)\n", catalog.n());

    println!("{:>9} {:>12} {:>14} {:>10}", "shortlist", "worst rank", "rank percent", "members");
    for r in [1usize, 2, 3, 5, 8, 12] {
        let sol = rank_regret::minimize(&catalog).size(r).solve()?;
        let k = sol.certified_regret.unwrap();
        println!(
            "{:>9} {:>12} {:>13.3}% {:>10}",
            r,
            k,
            100.0 * k as f64 / catalog.n() as f64,
            sol.size(),
        );
    }

    // Show what the winning 5-car shortlist looks like and verify its
    // guarantee independently with the exact 2D evaluator.
    let sol = rank_regret::minimize(&catalog).size(5).solve()?;
    let (exact, witness) = exact_rank_regret_2d(&catalog, &sol.indices, 0.0, 1.0);
    println!("\n5-car shortlist (HP, MPG):");
    for &i in &sol.indices {
        let row = catalog.row(i as usize);
        println!("  car #{:>5}: HP {:.3}, MPG {:.3}", i, row[0], row[1]);
    }
    println!(
        "exact worst-case rank: {exact} (attained near weight {witness:.3} on HP), \
         solver certified {}",
        sol.certified_regret.unwrap()
    );
    assert_eq!(exact, sol.certified_regret.unwrap(), "2DRRM's certificate is exact");

    Ok(())
}
