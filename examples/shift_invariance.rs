//! Theorem 1 in action: rank-regret answers survive attribute shifts,
//! regret-ratio (RMS) answers do not.
//!
//! Reproduces the paper's Figure 1 → Figure 2 demonstration: adding +4 to
//! attribute A2 (think °C → a different zero point) flips the RMS choice
//! from t4 to t7 — a tuple with the *worst possible* rank on A2 — while
//! the RRM choice stays t3.
//!
//! Run with: `cargo run --release --example shift_invariance`

use rank_regret::prelude::*;
use rrm_eval::{estimate_regret_ratio, exact_rank_regret_2d};
use rrm_hd::{mdrms, MdrmsOptions};

fn main() -> Result<(), RrmError> {
    let data = Dataset::from_rows(&[
        [0.00, 1.00], // t1
        [0.40, 0.95], // t2
        [0.57, 0.75], // t3
        [0.79, 0.60], // t4
        [0.20, 0.50], // t5
        [0.35, 0.30], // t6
        [1.00, 0.00], // t7
    ])?;
    let shifted = data.shift(&[0.0, 4.0]); // Figure 2: +4 on A2

    println!("dataset: Table I of the paper; shift: A2 += 4\n");
    println!("{:<26} {:>10} {:>10}", "query (r = 1)", "original", "shifted");

    // RRM via the exact 2D solver.
    let rrm_a = rank_regret::minimize(&data).size(1).solve()?;
    let rrm_b = rank_regret::minimize(&shifted).size(1).solve()?;
    println!(
        "{:<26} {:>10} {:>10}",
        "RRM (rank-regret)",
        format!("t{}", rrm_a.indices[0] + 1),
        format!("t{}", rrm_b.indices[0] + 1)
    );
    assert_eq!(rrm_a.indices, rrm_b.indices, "Theorem 1: shift invariant");

    // RMS via the MDRMS baseline.
    let rms_opts = MdrmsOptions::default();
    let rms_a = mdrms(&data, 1, &FullSpace::new(2), rms_opts)?;
    let rms_b = mdrms(&shifted, 1, &FullSpace::new(2), rms_opts)?;
    println!(
        "{:<26} {:>10} {:>10}",
        "RMS (regret-ratio)",
        format!("t{}", rms_a.indices[0] + 1),
        format!("t{}", rms_b.indices[0] + 1)
    );
    assert_ne!(rms_a.indices, rms_b.indices, "RMS is not shift invariant");

    // Quantify the damage: the shifted RMS pick through both lenses.
    let (rank_of_rms_pick, _) = exact_rank_regret_2d(&data, &rms_b.indices, 0.0, 1.0);
    let (rank_of_rrm_pick, _) = exact_rank_regret_2d(&data, &rrm_b.indices, 0.0, 1.0);
    let ratio_unshifted =
        estimate_regret_ratio(&data, &rms_b.indices, &FullSpace::new(2), 20_000, 1).max_ratio;
    println!(
        "\nafter the shift RMS picks t{} — worst-case rank {} of {} \
         (regret-ratio lens said {:.0}% pre-shift)",
        rms_b.indices[0] + 1,
        rank_of_rms_pick,
        data.n(),
        100.0 * ratio_unshifted
    );
    println!("RRM still picks t{} — worst-case rank {}", rrm_b.indices[0] + 1, rank_of_rrm_pick);
    Ok(())
}
