//! Quickstart: pick a tiny representative set from a dataset so that any
//! user with a linear preference finds a near-top tuple in it.
//!
//! Run with: `cargo run --release --example quickstart`

use rank_regret::prelude::*;

fn main() -> Result<(), RrmError> {
    // The paper's running example (Table I): seven products scored on two
    // criteria, both in [0, 1], larger preferred.
    let data = Dataset::from_rows(&[
        [0.00, 1.00], // t1
        [0.40, 0.95], // t2
        [0.57, 0.75], // t3
        [0.79, 0.60], // t4
        [0.20, 0.50], // t5
        [0.35, 0.30], // t6
        [1.00, 0.00], // t7
    ])?;

    println!("dataset: {} tuples x {} attributes\n", data.n(), data.dim());

    // RRM: the single best representative for *any* linear preference.
    let sol = rank_regret::minimize(&data).size(1).solve()?;
    println!(
        "best 1-tuple representative: t{} (worst-case rank {} of {})",
        sol.indices[0] + 1,
        sol.certified_regret.unwrap(),
        data.n()
    );

    // Spend a bigger budget and the guarantee tightens.
    for r in 2..=4 {
        let sol = rank_regret::minimize(&data).size(r).solve()?;
        let members: Vec<String> = sol.indices.iter().map(|i| format!("t{}", i + 1)).collect();
        println!(
            "best {r}-tuple representative: {{{}}} (worst-case rank {})",
            members.join(", "),
            sol.certified_regret.unwrap()
        );
    }

    // RRR, the dual question: how few tuples guarantee everyone a top-2
    // tuple?
    let sol = rank_regret::represent(&data).threshold(2).solve()?;
    println!(
        "\nsmallest set with rank-regret <= 2: {} tuples {:?}",
        sol.size(),
        sol.indices.iter().map(|i| i + 1).collect::<Vec<_>>()
    );

    Ok(())
}
