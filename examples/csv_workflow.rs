//! The full file-based workflow the `rrm` CLI automates, step by step:
//! write a raw product table to CSV (mixed units, a smaller-is-better
//! price column), load it, orient and normalize it, profile the rank
//! distribution of a shortlist, and answer a threshold query.
//!
//! Run with: `cargo run --release --example csv_workflow`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rank_regret::prelude::*;
use rrm_data::csv::{parse_csv, to_csv};
use rrm_eval::profile::{coverage_ratio, rank_profile};

fn main() -> Result<(), RrmError> {
    // 1. A raw laptop catalog: battery hours (more is better), weight in
    //    kg and price in dollars (less is better). Unnormalized units on
    //    purpose — rank-regret doesn't care (Theorem 1), but orientation
    //    does.
    let mut rng = StdRng::seed_from_u64(2024);
    let mut csv = String::from("battery_h,weight_kg,price_usd\n");
    for _ in 0..2_000 {
        let quality: f64 = rng.random();
        let battery = 4.0 + 16.0 * quality + 2.0 * rng.random::<f64>();
        let weight = 2.8 - 1.6 * quality + 0.4 * rng.random::<f64>();
        let price = 400.0 + 2200.0 * quality + 300.0 * rng.random::<f64>();
        csv.push_str(&format!("{battery:.2},{weight:.3},{price:.0}\n"));
    }

    // 2. Load and prepare: negate the smaller-is-better columns, then
    //    normalize every attribute to [0, 1].
    let table = parse_csv(&csv, true)?;
    println!("loaded {} laptops with columns {:?}", table.data.n(), table.headers);
    let data = table.data.negate_attributes(&[1, 2]).normalize();

    // 3. A 8-laptop shortlist that serves every linear preference.
    let sol = rank_regret::minimize(&data)
        .size(8)
        .hdrrm_options(rrm_hd::HdrrmOptions { delta: 0.1, ..Default::default() })
        .solve()?;
    println!(
        "\nshortlist of {} laptops, certified rank-regret {} (of {})",
        sol.size(),
        sol.certified_regret.unwrap(),
        data.n()
    );
    println!("{}", to_csv(&table.headers, &sol.materialize(&table.data)));

    // 4. Beyond the paper: the whole rank distribution, not just the max.
    let profile =
        rank_profile(&data, &sol.indices, &FullSpace::new(3), 20_000, &[0.5, 0.9, 0.99], 7);
    println!(
        "rank profile over 20K preference draws: median {}, p90 {}, p99 {}, worst {}",
        profile.quantile(0.5).unwrap(),
        profile.quantile(0.9).unwrap(),
        profile.quantile(0.99).unwrap(),
        profile.max
    );
    let k = sol.certified_regret.unwrap();
    let cov = coverage_ratio(&data, &sol.indices, &FullSpace::new(3), k, 20_000, 7);
    println!("fraction of users served within the certificate (Rat_k): {:.3}", cov);

    Ok(())
}
